(* Live status aggregation: heartbeats and job transitions from worker
   domains fold into one mutex-guarded structure, periodically rendered
   to an atomically-renamed status.json for `watch`/dashboards.

   All wall-clock derived fields (ETA, instr/s) are estimates; the file
   is ephemeral operational telemetry, not a determinism surface — the
   byte-identical outputs are the results store and the journal. *)

module Hb = Sweep_obs.Heartbeat
module Ev = Sweep_obs.Event

let schema_version = 2

type job = {
  key : string;
  started_s : float;
  mutable instructions : int;
  mutable sim_ns : float;
  mutable reboots : int;
  mutable nvm_writes : int;
  mutable beats : int;
}

type t = {
  path : string;
  interval_s : float;
  workers : int;
  created_s : float;
  lock : Mutex.t;
  running : (string, job) Hashtbl.t;
  mutable total : int;
  mutable started : int;
  mutable done_ : int;
  mutable failed : int;
  mutable retried : int;  (* requeued attempts; not part of the total sum *)
  mutable elapsed_done_s : float;  (* wall time summed over finished jobs *)
  mutable sim_done_ns : float;  (* simulated time summed over ok jobs *)
  mutable ok : int;
  mutable last_write_s : float;
}

let create ~path ?(interval_s = 0.5) ~workers () =
  {
    path;
    interval_s;
    workers = max 1 workers;
    created_s = Unix.gettimeofday ();
    lock = Mutex.create ();
    running = Hashtbl.create 16;
    total = 0;
    started = 0;
    done_ = 0;
    failed = 0;
    retried = 0;
    elapsed_done_s = 0.0;
    sim_done_ns = 0.0;
    ok = 0;
    last_write_s = neg_infinity;
  }

let js = Ev.json_string

let render_locked t ~now =
  let b = Buffer.create 512 in
  let queued = max 0 (t.total - t.started) in
  let mean_elapsed =
    if t.done_ + t.failed > 0 then
      t.elapsed_done_s /. float_of_int (t.done_ + t.failed)
    else 0.0
  in
  let mean_sim_ns =
    if t.ok > 0 then t.sim_done_ns /. float_of_int t.ok else 0.0
  in
  let running = Hashtbl.fold (fun _ j acc -> j :: acc) t.running [] in
  let running = List.sort (fun a b -> compare a.key b.key) running in
  let running_elapsed =
    List.fold_left (fun acc j -> acc +. (now -. j.started_s)) 0.0 running
  in
  (* Remaining wall-work estimate from the mean finished-job time,
     credited with the time already sunk into running jobs, spread
     over the pool. *)
  let eta_s =
    if t.done_ + t.failed = 0 then None
    else
      let left = queued + List.length running in
      let work = (float_of_int left *. mean_elapsed) -. running_elapsed in
      Some (Float.max 0.0 (work /. float_of_int t.workers))
  in
  let pct_done =
    if t.total = 0 then 100.0
    else float_of_int (t.done_ + t.failed) *. 100.0 /. float_of_int t.total
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\":%d,\"ts_s\":%.3f,\"elapsed_s\":%.3f,\"workers\":%d,"
       schema_version now (now -. t.created_s) t.workers);
  Buffer.add_string b
    (Printf.sprintf
       "\"jobs\":{\"total\":%d,\"queued\":%d,\"running\":%d,\"done\":%d,\"failed\":%d,\"retried\":%d,\"pct_done\":%.2f},"
       t.total queued (List.length running) t.done_ t.failed t.retried
       pct_done);
  (match eta_s with
  | Some e -> Buffer.add_string b (Printf.sprintf "\"eta_s\":%.1f," e)
  | None -> Buffer.add_string b "\"eta_s\":null,");
  let total_ips =
    List.fold_left
      (fun acc j ->
        let dt = now -. j.started_s in
        if dt > 0.0 then acc +. (float_of_int j.instructions /. dt) else acc)
      0.0 running
  in
  Buffer.add_string b
    (Printf.sprintf "\"throughput\":{\"instr_per_s\":%.0f}," total_ips);
  Buffer.add_string b "\"running\":[";
  List.iteri
    (fun i j ->
      if i > 0 then Buffer.add_char b ',';
      let dt = now -. j.started_s in
      let ips = if dt > 0.0 then float_of_int j.instructions /. dt else 0.0 in
      (* % complete is an estimate against the mean simulated time of
         the jobs finished so far — capped below 100 because a slow
         cell can legitimately exceed the mean. *)
      let progress =
        if mean_sim_ns > 0.0 && j.sim_ns > 0.0 then
          Printf.sprintf "%.3f" (Float.min 0.99 (j.sim_ns /. mean_sim_ns))
        else "null"
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"job\":%s,\"elapsed_s\":%.3f,\"beats\":%d,\"instructions\":%d,\"sim_ns\":%.17g,\"reboots\":%d,\"nvm_writes\":%d,\"instr_per_s\":%.0f,\"est_progress\":%s}"
           (js j.key) dt j.beats j.instructions j.sim_ns j.reboots
           j.nvm_writes ips progress))
    running;
  Buffer.add_string b "]}";
  Buffer.contents b

(* Atomic publication: scrape-side readers either see the previous
   snapshot or this one, never a torn write. *)
let write_locked t ~now =
  t.last_write_s <- now;
  let line = render_locked t ~now in
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc line;
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp t.path

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write t =
  with_lock t (fun () -> write_locked t ~now:(Unix.gettimeofday ()))

let maybe_write_locked t =
  let now = Unix.gettimeofday () in
  if now -. t.last_write_s >= t.interval_s then write_locked t ~now

let add_total t n = with_lock t (fun () -> t.total <- t.total + n)

let job_started t ~key =
  with_lock t (fun () ->
      let now = Unix.gettimeofday () in
      t.started <- t.started + 1;
      Hashtbl.replace t.running key
        {
          key;
          started_s = now;
          instructions = 0;
          sim_ns = 0.0;
          reboots = 0;
          nvm_writes = 0;
          beats = 0;
        };
      maybe_write_locked t)

let beat_counts t ~key ~instructions ~sim_ns ~reboots ~nvm_writes ~beats =
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.running key with
      | Some j ->
        j.instructions <- instructions;
        j.sim_ns <- sim_ns;
        j.reboots <- reboots;
        j.nvm_writes <- nvm_writes;
        j.beats <- beats
      | None -> ());
      maybe_write_locked t)

let beat t ~key (hb : Hb.t) =
  beat_counts t ~key ~instructions:hb.Hb.instructions ~sim_ns:(Hb.sim_ns hb)
    ~reboots:hb.Hb.reboots ~nvm_writes:hb.Hb.nvm_writes ~beats:(Hb.beats hb)

(* A retried job leaves the running set and returns to the queue: undo
   its [started] increment so queued+running+done+failed still sums to
   total, and count the failed attempt separately. *)
let job_retried t ~key =
  with_lock t (fun () ->
      if Hashtbl.mem t.running key then begin
        Hashtbl.remove t.running key;
        t.started <- t.started - 1;
        t.retried <- t.retried + 1
      end;
      maybe_write_locked t)

let job_finished t ~key ~ok ~elapsed_s ~sim_ns =
  with_lock t (fun () ->
      Hashtbl.remove t.running key;
      if ok then begin
        t.done_ <- t.done_ + 1;
        t.ok <- t.ok + 1;
        t.sim_done_ns <- t.sim_done_ns +. sim_ns
      end
      else t.failed <- t.failed + 1;
      t.elapsed_done_s <- t.elapsed_done_s +. elapsed_s;
      maybe_write_locked t)
