(* Table 1: the simulation configuration actually used by the models. *)
module Table = Sweep_util.Table
module E = Sweep_energy.Energy_config

(* Pure configuration printout — no simulations to schedule. *)
let jobs () : Jobs.t list = []

let run () =
  Printf.printf "== Table 1 — simulation configuration ==\n";
  let e = E.default in
  let t =
    Table.create [ "parameter"; "NVP"; "ReplayCache"; "NVSRAM"; "SweepCache" ]
  in
  Table.add_row t [ "Vmax/Vmin (V)"; "3.5/2.8"; "3.5/2.8"; "3.5/2.8"; "3.5/2.8" ];
  Table.add_row t [ "Backup/Restore (V)"; "2.9/3.2"; "2.9/3.2"; "3.2/3.4"; "No/3.3" ];
  Table.add_row t [ "Cache size"; "N/A"; "4KB 2-way"; "4KB 2-way"; "4KB 2-way" ];
  Table.add_row t [ "Capacitor"; "470nF"; "470nF"; "470nF"; "470nF" ];
  Table.add_row t [ "NVM size"; "16MB"; "16MB"; "16MB"; "16MB" ];
  Table.add_row t
    [
      "NVM write/read";
      Printf.sprintf "%.0f/%.0f ns" e.E.nvm_write_ns e.E.nvm_read_ns;
      "same"; "same"; "same";
    ];
  Table.add_row t
    [ "Propagation delay"; "1.5/10.3us"; "1.5/10.3us"; "1.5/10.3us"; "No/1.1us" ];
  Table.add_row t
    [ "Persist buffer"; "-"; "-"; "-"; "2 x 64 entries (64B lines)" ];
  Table.print t;
  print_newline ()
