(* Fig. 15: cache miss rate per power trace for ReplayCache, NVSRAM,
   NVSRAM-E and SweepCache (470 nF). *)
module H = Sweep_sim.Harness
module C = Exp_common
module Trace = Sweep_energy.Power_trace
module Table = Sweep_util.Table

let settings =
  [
    C.setting H.Replay;
    C.setting H.Nvsram;
    C.setting H.Nvsram_e;
    C.sweep_empty_bit;
  ]

let trace_kinds = [ Trace.Rf_office; Trace.Rf_home; Trace.Solar; Trace.Thermal ]

let jobs () =
  Jobs.matrix ~exp:"fig15"
    ~powers:(List.map Jobs.harvested trace_kinds)
    settings C.subset_names

let run () =
  Printf.printf
    "== Fig. 15 — cache miss rate (%%) across power traces (470 nF, subset) ==\n";
  let t = Table.create ("trace" :: List.map (fun s -> s.C.label) settings) in
  List.iter
    (fun kind ->
      let power = C.power (C.trace_of kind) in
      Table.add_float_row t (Trace.kind_name kind)
        (List.map
           (fun s ->
             Sweep_util.Stats.mean
               (List.map
                  (fun b -> 100.0 *. (C.run s ~power b).C.miss_rate)
                  C.subset_names))
           settings))
    trace_kinds;
  Table.print t;
  print_newline ()
