(* §6.9: hardware cost accounting — SweepCache needs two persist buffers
   plus 134 bits of control state for a 4 kB cache. *)
module Table = Sweep_util.Table
module Layout = Sweep_isa.Layout

(* Pure configuration arithmetic — no simulations to schedule. *)
let jobs () : Jobs.t list = []

let run () =
  Printf.printf "== §6.9 — SweepCache hardware costs (4 kB cache) ==\n";
  let cfg = Sweep_machine.Config.default in
  let lines = cfg.Sweep_machine.Config.cache_size_bytes / Layout.line_bytes in
  let t = Table.create [ "structure"; "bits"; "note" ] in
  let buffer_bits =
    cfg.buffer_count * cfg.buffer_entries * ((Layout.line_bytes * 8) + 32)
  in
  Table.add_row t
    [
      "persist buffers";
      string_of_int buffer_bits;
      Printf.sprintf "%d x %d entries x (512b data + 32b addr), NVM-resident"
        cfg.buffer_count cfg.buffer_entries;
    ];
  Table.add_row t
    [ "empty-bits"; string_of_int cfg.buffer_count; "one per buffer" ];
  Table.add_row t
    [
      "phaseComplete bits";
      string_of_int (2 * cfg.buffer_count);
      "phase1/phase2 per buffer, persistent register";
    ];
  Table.add_row t
    [
      "WBI tables";
      string_of_int (2 * lines);
      Printf.sprintf "2 x %d-bit SRAM (one bit per cacheline)" lines;
    ];
  let total = cfg.buffer_count + (2 * cfg.buffer_count) + (2 * lines) in
  Table.add_row t
    [
      "control total";
      string_of_int total;
      "excl. buffers; the paper counts 134 bits for this configuration";
    ];
  Table.print t;
  print_newline ()
