module Driver = Sweep_sim.Driver
module Mstats = Sweep_machine.Mstats

type summary = {
  outcome : Driver.outcome;
  mstats : Mstats.t;
  miss_rate : float;
  nvm_writes : int;
}

(* ------------------------------------------------------------------ *)
(* The store.  One global keyed table shared by the sequential render
   path (Exp_common.run) and the parallel executor; every access takes
   [lock].  Insertion keeps the first value so callers can rely on
   physical equality of repeated lookups. *)

let lock = Mutex.create ()
let table : (string, summary) Hashtbl.t = Hashtbl.create 256

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find key = with_lock (fun () -> Hashtbl.find_opt table key)

let add ~key summary =
  with_lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some existing -> existing
      | None ->
        Hashtbl.replace table key summary;
        summary)

let mem key = with_lock (fun () -> Hashtbl.mem table key)
let size () = with_lock (fun () -> Hashtbl.length table)

(* ------------------------------------------------------------------ *)
(* Failure side-store.  A job that raises (e.g. [Driver.Stagnation] on
   a region too long for the capacitor) produces no summary; the
   executor records it here instead of tearing down the worker pool, so
   one bad job cannot kill a -j N sweep.  Renderers then see a missing
   key and the CLI reports the failures at the end. *)

type failure = { key : string; error : string; backtrace : string }

let failure_log : failure list ref = ref []

let record_failure ~key ~error ~backtrace =
  with_lock (fun () -> failure_log := { key; error; backtrace } :: !failure_log)

let failures () = with_lock (fun () -> List.rev !failure_log)

let clear () =
  with_lock (fun () ->
      Hashtbl.reset table;
      failure_log := [])

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

(* ------------------------------------------------------------------ *)
(* JSONL sink.  Disabled until a directory is configured; each executed
   job then appends one line to <dir>/<experiment>.jsonl.  Appends are
   serialised by [io_lock] and use open/write/close per line so
   concurrent domains never interleave partial lines. *)

let io_lock = Mutex.create ()
let sink_dir = ref None
let current_exp = ref "adhoc"

let set_dir dir = Mutex.lock io_lock; sink_dir := dir; Mutex.unlock io_lock
let dir () = !sink_dir

let set_current_experiment name =
  Mutex.lock io_lock;
  current_exp := name;
  Mutex.unlock io_lock

let current_experiment () = !current_exp

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Bump when the line layout changes; consumers should check it before
   parsing (see README "Results schema").  v2 added [schema_version] and
   the [ts] emission timestamp. *)
let schema_version = 2

type direction = [ `Lower_better | `Higher_better | `Info ]

(* The numeric per-line fields and the direction a change should be
   judged in, kept next to [json_line] so a schema change updates both.
   [`Info] fields are reported but never gate a regression verdict
   (e.g. elapsed_s is wall-clock noise; buffer_hits depends on the
   design's policy, not on how fast it runs). *)
let numeric_fields =
  [
    ("on_ns", `Lower_better);
    ("off_ns", `Lower_better);
    ("outages", `Lower_better);
    ("deaths", `Lower_better);
    ("backups", `Info);
    ("failed_backups", `Lower_better);
    ("compute_joules", `Lower_better);
    ("backup_joules", `Lower_better);
    ("restore_joules", `Lower_better);
    ("quiescent_joules", `Lower_better);
    ("instructions", `Lower_better);
    ("loads", `Info);
    ("stores", `Info);
    ("regions", `Info);
    ("buffer_searches", `Info);
    ("buffer_bypasses", `Info);
    ("buffer_hits", `Info);
    ("parallelism_eff", `Higher_better);
    ("miss_rate", `Lower_better);
    ("nvm_writes", `Lower_better);
    ("scale", `Info);
    ("elapsed_s", `Info);
  ]

(* Derived series sweeptrace adds on top of the raw fields. *)
let derived_fields =
  [ ("total_ns", `Lower_better); ("total_joules", `Lower_better) ]

let direction name =
  match List.assoc_opt name (numeric_fields @ derived_fields) with
  | Some d -> d
  | None -> `Info

let iso8601 epoch_s =
  let tm = Unix.gmtime epoch_s in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let json_line ?ts ~exp ~key ~design ~label ~power ~bench ~scale ~elapsed_s s =
  let o = s.outcome in
  let st = s.mstats in
  let ts = match ts with Some t -> t | None -> Unix.gettimeofday () in
  Printf.sprintf
    "{\"schema_version\":%d,\"ts\":\"%s\",\
     \"experiment\":\"%s\",\"key\":\"%s\",\"design\":\"%s\",\"label\":\"%s\",\
     \"power\":\"%s\",\"bench\":\"%s\",\"scale\":%g,\
     \"completed\":%b,\"on_ns\":%.17g,\"off_ns\":%.17g,\
     \"outages\":%d,\"deaths\":%d,\"backups\":%d,\"failed_backups\":%d,\
     \"compute_joules\":%.17g,\"backup_joules\":%.17g,\
     \"restore_joules\":%.17g,\"quiescent_joules\":%.17g,\
     \"instructions\":%d,\"loads\":%d,\"stores\":%d,\"regions\":%d,\
     \"buffer_searches\":%d,\"buffer_bypasses\":%d,\"buffer_hits\":%d,\
     \"parallelism_eff\":%.17g,\
     \"miss_rate\":%.17g,\"nvm_writes\":%d,\"elapsed_s\":%.6f}"
    schema_version (iso8601 ts)
    (json_escape exp) (json_escape key) (json_escape design)
    (json_escape label) (json_escape power) (json_escape bench) scale
    o.Driver.completed o.Driver.on_ns o.Driver.off_ns o.Driver.outages
    o.Driver.deaths o.Driver.backups o.Driver.failed_backups
    o.Driver.compute_joules o.Driver.backup_joules o.Driver.restore_joules
    o.Driver.quiescent_joules o.Driver.instructions st.Mstats.loads
    st.Mstats.stores st.Mstats.regions st.Mstats.buffer_searches
    st.Mstats.buffer_bypasses st.Mstats.buffer_hits
    (Mstats.parallelism_efficiency st)
    s.miss_rate s.nvm_writes elapsed_s

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let emit ~exp ~key ~design ~label ~power ~bench ~scale ~elapsed_s summary =
  match !sink_dir with
  | None -> ()
  | Some dir ->
    let line =
      json_line ~exp ~key ~design ~label ~power ~bench ~scale ~elapsed_s
        summary
    in
    Mutex.lock io_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock io_lock)
      (fun () ->
        mkdir_p dir;
        let path = Filename.concat dir (exp ^ ".jsonl") in
        let oc =
          open_out_gen [ Open_append; Open_creat ] 0o644 path
        in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc line;
            output_char oc '\n';
            (* Durability on normal completion, not just on failure: a
               supervisor-respawned process must never re-read a torn
               final record as valid. *)
            flush oc;
            try Unix.fsync (Unix.descr_of_out_channel oc)
            with Unix.Unix_error _ -> ()))
