(** JSONL pipe protocol between the supervisor and worker processes.

    One frame per line; job specs and summaries ride as hex-encoded
    [Marshal] payloads (supervisor and worker are the same binary, so
    the format matches by construction).  Decoders return [None] on any
    malformed line — a worker killed mid-write leaves a torn final
    line, which the supervisor must skip, not crash on. *)

type to_worker =
  | Init of { heartbeat_every : int; attrib_dir : string option }
      (** First frame after spawn: run configuration. *)
  | Job of { key : string; spec : Jobs.t; sim_budget_ns : float option }
  | Quit  (** Orderly shutdown; the worker exits 0. *)

type from_worker =
  | Beat of {
      key : string;
      instructions : int;
      sim_ns : float;
      reboots : int;
      nvm_writes : int;
      beats : int;
    }
      (** Forwarded {!Sweep_obs.Heartbeat} observer state — the
          supervisor's liveness signal and the parent {!Status} feed. *)
  | Done of { key : string; elapsed_s : float; summary : Results.summary }
  | Failed of { key : string; error : string; backtrace : string }
      (** The job raised in the worker.  Deterministic failures are not
          retried (they would fail identically); only worker deaths
          trigger the retry path. *)

val line_of_to_worker : to_worker -> string
val line_of_from_worker : from_worker -> string

val to_worker_of_line : string -> to_worker option
val from_worker_of_line : string -> from_worker option

val to_hex : string -> string
(** Lowercase hex of every byte (exposed for tests). *)

val of_hex : string -> string
(** Inverse of {!to_hex}; raises on odd length or non-hex digits. *)
