(** Live run status: heartbeat and job-transition aggregation rendered
    to an atomically-renamed JSON file ([--status-file]).

    The executor calls {!job_started}/{!job_finished} around each job
    and wires {!beat} as the per-job heartbeat observer; this module
    folds them (mutex-guarded — workers call in concurrently) and
    rewrites the file at most once per [interval_s], via a temp file +
    rename so a watcher never reads a torn snapshot.

    The JSON is one object: [schema_version], [ts_s], [elapsed_s],
    [workers], [jobs {total queued running done failed retried
    pct_done}],
    [eta_s] (null until a first job finishes), [throughput
    {instr_per_s}], and [running], an array with one entry per
    in-flight job ([job], [elapsed_s], [beats], [instructions],
    [sim_ns], [reboots], [nvm_writes], [instr_per_s], [est_progress] —
    the latter an estimate against the mean simulated time of finished
    jobs, null while nothing has finished).  Everything here is
    wall-clock telemetry: the deterministic outputs of a run are the
    results store and the journal, never this file.

    Fleet runs pass [rollup] to switch the file to the cohort schema
    ({!rollup_schema_version}): a [cohorts] array with one bounded
    record per cohort ([cohort], [total], [queued], [running], [done],
    [failed]), a [running_shown] count, and a [running] array capped at
    [max_running] entries — the snapshot stays O(cohorts + cap) instead
    of O(devices) for 100k-device populations. *)

type t

val schema_version : int
(** Plain (no-rollup) snapshot schema. *)

val rollup_schema_version : int
(** Schema written when {!create} received [rollup]: adds [cohorts] and
    [running_shown], and caps the [running] array. *)

val create :
  path:string ->
  ?interval_s:float ->
  ?rollup:(string -> string) ->
  ?max_running:int ->
  workers:int ->
  unit ->
  t
(** [interval_s] defaults to 0.5 s.  [rollup] maps a job key to its
    cohort name and switches the file to {!rollup_schema_version};
    [max_running] (default 16) caps the per-job [running] array in that
    mode. *)

val add_total : t -> int -> unit
(** Announce [n] more jobs (the executor calls this per [execute]
    batch, so sweeptune's chunked scheduling accumulates). *)

val declare_cohort : t -> name:string -> total:int -> unit
(** Announce [total] more jobs belonging to cohort [name] (rollup mode;
    fixes declaration order in the [cohorts] array).  Cohorts first
    seen via a job transition render with total 0 until declared. *)

val job_started : t -> key:string -> unit
val beat : t -> key:string -> Sweep_obs.Heartbeat.t -> unit

val beat_counts :
  t ->
  key:string ->
  instructions:int ->
  sim_ns:float ->
  reboots:int ->
  nvm_writes:int ->
  beats:int ->
  unit
(** {!beat} from raw counters — the supervisor folds worker-process
    {!Wire.Beat} frames in without materialising a heartbeat value. *)

val job_retried : t -> key:string -> unit
(** The job's worker died and the job went back to the queue: moves it
    from [running] to [queued] (so the jobs sum still equals [total])
    and bumps the [retried] counter. *)

val job_finished :
  t -> key:string -> ok:bool -> elapsed_s:float -> sim_ns:float -> unit
(** [sim_ns] is the job's total simulated time (feeds the
    [est_progress] baseline); pass 0 for failures. *)

val write : t -> unit
(** Unconditional write (end of run), bypassing the interval. *)
