(** Live run status: heartbeat and job-transition aggregation rendered
    to an atomically-renamed JSON file ([--status-file]).

    The executor calls {!job_started}/{!job_finished} around each job
    and wires {!beat} as the per-job heartbeat observer; this module
    folds them (mutex-guarded — workers call in concurrently) and
    rewrites the file at most once per [interval_s], via a temp file +
    rename so a watcher never reads a torn snapshot.

    The JSON is one object: [schema_version], [ts_s], [elapsed_s],
    [workers], [jobs {total queued running done failed retried
    pct_done}],
    [eta_s] (null until a first job finishes), [throughput
    {instr_per_s}], and [running], an array with one entry per
    in-flight job ([job], [elapsed_s], [beats], [instructions],
    [sim_ns], [reboots], [nvm_writes], [instr_per_s], [est_progress] —
    the latter an estimate against the mean simulated time of finished
    jobs, null while nothing has finished).  Everything here is
    wall-clock telemetry: the deterministic outputs of a run are the
    results store and the journal, never this file. *)

type t

val schema_version : int

val create : path:string -> ?interval_s:float -> workers:int -> unit -> t
(** [interval_s] defaults to 0.5 s. *)

val add_total : t -> int -> unit
(** Announce [n] more jobs (the executor calls this per [execute]
    batch, so sweeptune's chunked scheduling accumulates). *)

val job_started : t -> key:string -> unit
val beat : t -> key:string -> Sweep_obs.Heartbeat.t -> unit

val beat_counts :
  t ->
  key:string ->
  instructions:int ->
  sim_ns:float ->
  reboots:int ->
  nvm_writes:int ->
  beats:int ->
  unit
(** {!beat} from raw counters — the supervisor folds worker-process
    {!Wire.Beat} frames in without materialising a heartbeat value. *)

val job_retried : t -> key:string -> unit
(** The job's worker died and the job went back to the queue: moves it
    from [running] to [queued] (so the jobs sum still equals [total])
    and bumps the [retried] counter. *)

val job_finished :
  t -> key:string -> ok:bool -> elapsed_s:float -> sim_ns:float -> unit
(** [sim_ns] is the job's total simulated time (feeds the
    [est_progress] baseline); pass 0 for failures. *)

val write : t -> unit
(** Unconditional write (end of run), bypassing the interval. *)
