(* Process exit codes shared by sweepexp and sweeptune.

   Documented in the README ("Exit codes") and asserted by tests and
   CI — scripts branch on these, so they are API:

     0  clean completion
     1  completed, but one or more jobs failed or were quarantined
     2  degraded completion (respawn budget exhausted; sweep finished
        on surviving workers)
     3  interrupted (sweeptune --kill-after fault injection)
     64 command-line usage error (EX_USAGE)

   Degraded outranks per-job failures: a run that lost workers has a
   capacity problem worth distinguishing even when every job that did
   run succeeded; interruption outranks both because the run never
   reached its end. *)

let clean = 0
let job_failures = 1
let degraded = 2
let interrupted = 3
let usage = 64

let of_run ~degraded:d ~failures =
  if d then degraded else if failures > 0 then job_failures else clean
