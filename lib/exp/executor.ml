module H = Sweep_sim.Harness
module Sink = Sweep_obs.Sink
module Ev = Sweep_obs.Event
module Metrics = Sweep_obs.Metrics

(* Worker count is process-global configuration (the -j flag), read at
   execute time.  1 means fully sequential: no domain is spawned, which
   keeps e.g. `dune runtest` and byte-for-byte reference runs on the
   plain code path. *)
let default_workers = ref (Domain.recommended_domain_count ())
let set_workers n = default_workers := max 1 n
let workers () = !default_workers

let progress_enabled = ref false
let set_progress b = progress_enabled := b

(* Wall-clock origin for Job_start/Job_done timestamps: simulation events
   carry simulated ns, executor events carry host ns since process
   start — the Chrome sink keeps them on separate process tracks. *)
let epoch_s = Unix.gettimeofday ()
let wall_ns () = (Unix.gettimeofday () -. epoch_s) *. 1.0e9

let m_jobs_run = Metrics.counter "exp.jobs_run"
let m_jobs_cached = Metrics.counter "exp.jobs_cached"

let m_job_elapsed =
  Metrics.histogram "exp.job_elapsed_s"
    ~buckets:[| 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |]

let progress_lock = Mutex.create ()
let progress_done = ref 0
let progress_total = ref 0

let note_progress key elapsed_s =
  if !progress_enabled then begin
    Mutex.lock progress_lock;
    incr progress_done;
    Printf.eprintf "[%d/%d] %s (%.2fs)\n%!" !progress_done !progress_total key
      elapsed_s;
    Mutex.unlock progress_lock
  end

let m_jobs_failed = Metrics.counter "exp.jobs_failed"

let run_job j =
  let key = Jobs.key j in
  if Results.mem key then begin
    if Metrics.enabled () then Metrics.inc m_jobs_cached
  end
  else begin
    if Sink.on () then Sink.emit ~ns:(wall_ns ()) (Ev.Job_start { key });
    let power = Jobs.to_power j.Jobs.power in
    let t0 = Unix.gettimeofday () in
    match
      Exp_common.compute ~scale:j.Jobs.scale j.Jobs.setting ~power
        j.Jobs.bench
    with
    (* A failing job (Stagnation, a workload bug, …) becomes a
       structured Failed result: the pool keeps draining, renderers see
       a missing key, and the CLI reports the failure at the end. *)
    | exception exn ->
      let backtrace = Printexc.get_backtrace () in
      let error = Printexc.to_string exn in
      Results.record_failure ~key ~error ~backtrace;
      if Sink.on () then
        Sink.emit ~ns:(wall_ns ()) (Ev.Job_failed { key; error });
      if Metrics.enabled () then Metrics.inc m_jobs_failed;
      note_progress (key ^ " FAILED: " ^ error)
        (Unix.gettimeofday () -. t0)
    | summary ->
      let elapsed_s = Unix.gettimeofday () -. t0 in
      if Sink.on () then
        Sink.emit ~ns:(wall_ns ()) (Ev.Job_done { key; elapsed_s });
      if Metrics.enabled () then begin
        Metrics.inc m_jobs_run;
        Metrics.observe m_job_elapsed elapsed_s
      end;
      note_progress key elapsed_s;
      let stored = Results.add ~key summary in
      if stored == summary then
        Results.emit ~exp:j.Jobs.exp ~key
          ~design:(H.design_name j.Jobs.setting.Exp_common.design)
          ~label:j.Jobs.setting.Exp_common.label
          ~power:(Jobs.power_id j.Jobs.power)
          ~bench:j.Jobs.bench ~scale:j.Jobs.scale ~elapsed_s summary
  end

(* Shared worker pool: indices 0..n-1 pulled from an atomic cursor by
   [w] domains (the calling domain is one of them).  If any worker
   raises, the remaining indices still finish in the other workers and
   the first exception is re-raised after the join. *)
let pool_iter ~w n f =
  if n <= 0 then ()
  else if w <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          f i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (min w n - 1) (fun _ -> Domain.spawn worker) in
    let parent_error = try worker (); None with e -> Some e in
    let worker_error =
      List.fold_left
        (fun acc d ->
          match (try Domain.join d; None with e -> Some e) with
          | Some _ as e when acc = None -> e
          | _ -> acc)
        None spawned
    in
    match (parent_error, worker_error) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let map ?workers:w f xs =
  let w = match w with Some w -> max 1 w | None -> !default_workers in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let out = Array.make n None in
  pool_iter ~w n (fun i -> out.(i) <- Some (f arr.(i)));
  Array.to_list out
  |> List.map (function Some r -> r | None -> assert false)

let execute ?workers:w jobs =
  let w = match w with Some w -> max 1 w | None -> !default_workers in
  let pending =
    List.filter (fun j -> not (Results.mem (Jobs.key j))) (Jobs.dedup jobs)
  in
  Mutex.lock progress_lock;
  progress_done := 0;
  progress_total := List.length pending;
  Mutex.unlock progress_lock;
  match pending with
  | [] -> ()
  | pending ->
    (* Materialise every trace in the parent domain so workers share
       read-only instances instead of racing to build them. *)
    if w > 1 && List.length pending > 1 then
      List.iter (fun j -> ignore (Jobs.to_power j.Jobs.power)) pending;
    let arr = Array.of_list pending in
    pool_iter ~w (Array.length arr) (fun i -> run_job arr.(i))
