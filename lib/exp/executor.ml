module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Sink = Sweep_obs.Sink
module Ev = Sweep_obs.Event
module Metrics = Sweep_obs.Metrics
module Hb = Sweep_obs.Heartbeat
module Flight = Sweep_obs.Flight
module Om = Sweep_obs.Openmetrics

(* Worker count is process-global configuration (the -j flag), read at
   execute time.  1 means fully sequential: no domain is spawned, which
   keeps e.g. `dune runtest` and byte-for-byte reference runs on the
   plain code path. *)
let default_workers = ref (Domain.recommended_domain_count ())
let set_workers n = default_workers := max 1 n
let workers () = !default_workers

(* Telemetry and reporting are per-run configuration, threaded through
   [execute] instead of mutated globals. *)
type config = {
  progress : bool;
  heartbeat_every : int;
  status : Status.t option;
  flight : Flight.t option;
  export : Om.exporter option;
  attrib_dir : string option;
  rcache : Rcache.t option;
  distribute : Supervisor.policy option;
}

let config ?(progress = false) ?(heartbeat_every = 0) ?status ?flight ?export
    ?attrib_dir ?rcache ?distribute () =
  {
    progress;
    heartbeat_every;
    status;
    flight;
    export;
    attrib_dir;
    rcache;
    distribute;
  }

let default_config () =
  {
    progress = false;
    heartbeat_every = 0;
    status = None;
    flight = None;
    export = None;
    attrib_dir = None;
    rcache = None;
    distribute = None;
  }

(* Wall-clock origin for Job_start/Job_done timestamps: simulation events
   carry simulated ns, executor events carry host ns since process
   start — the Chrome sink keeps them on separate process tracks. *)
let epoch_s = Unix.gettimeofday ()
let wall_ns () = (Unix.gettimeofday () -. epoch_s) *. 1.0e9

let m_jobs_run = Metrics.counter "exp.jobs_run"
let m_jobs_cached = Metrics.counter "exp.jobs_cached"

let m_job_elapsed =
  Metrics.histogram "exp.job_elapsed_s"
    ~buckets:[| 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |]

let m_jobs_failed = Metrics.counter "exp.jobs_failed"

(* Per-[execute] run state: configuration plus the progress counter the
   old global pair used to hold. *)
type run_state = {
  cfg : config;
  budget : Jobs.t -> float option;
  plock : Mutex.t;
  mutable finished : int;
  total : int;
}

let note_progress st key elapsed_s =
  Mutex.lock st.plock;
  st.finished <- st.finished + 1;
  if st.cfg.progress then
    Printf.eprintf "[%d/%d] %s (%.2fs)\n%!" st.finished st.total key elapsed_s;
  Mutex.unlock st.plock

(* One fresh heartbeat per job (never shared across domains), observed
   by the live-status aggregator and the metrics exporter. *)
let heartbeat_for st ~key =
  if st.cfg.heartbeat_every <= 0 then None
  else
    let observer =
      match (st.cfg.status, st.cfg.export) with
      | None, None -> None
      | status, export ->
        Some
          (fun hb ->
            Option.iter (fun s -> Status.beat s ~key hb) status;
            Option.iter Om.tick export)
    in
    Some (Hb.create ?observer ~every:st.cfg.heartbeat_every ())

let run_job st j =
  let key = Jobs.key j in
  if Results.mem key then begin
    if Metrics.enabled () then Metrics.inc m_jobs_cached
  end
  else begin
    if Sink.on () then Sink.emit ~ns:(wall_ns ()) (Ev.Job_start { key });
    let power = Jobs.to_power j.Jobs.power in
    let sim_budget_ns = st.budget j in
    let heartbeat = heartbeat_for st ~key in
    Option.iter (fun s -> Status.job_started s ~key) st.cfg.status;
    let t0 = Unix.gettimeofday () in
    match
      Exp_common.compute ~scale:j.Jobs.scale ?sim_budget_ns ?heartbeat
        ?attrib_dir:st.cfg.attrib_dir j.Jobs.setting ~power j.Jobs.bench
    with
    (* A failing job (Stagnation, a workload bug, …) becomes a
       structured Failed result: the pool keeps draining, renderers see
       a missing key, and the CLI reports the failure at the end. *)
    | exception exn ->
      let elapsed_s = Unix.gettimeofday () -. t0 in
      let backtrace = Printexc.get_backtrace () in
      let error = Printexc.to_string exn in
      Results.record_failure ~key ~error ~backtrace;
      if Sink.on () then
        Sink.emit ~ns:(wall_ns ()) (Ev.Job_failed { key; error });
      (* Flight recorder: the ring has been collecting alongside the
         sink (including the Job_failed line just emitted); freeze it
         into a post-mortem artifact for this key. *)
      (match st.cfg.flight with
      | Some fl ->
        let path = Flight.dump fl ~key ~error ~backtrace in
        if st.cfg.progress then Printf.eprintf "postmortem: %s\n%!" path
      | None -> ());
      if Metrics.enabled () then Metrics.inc m_jobs_failed;
      Option.iter
        (fun s -> Status.job_finished s ~key ~ok:false ~elapsed_s ~sim_ns:0.0)
        st.cfg.status;
      Option.iter Om.tick st.cfg.export;
      note_progress st (key ^ " FAILED: " ^ error) elapsed_s
    | summary ->
      let elapsed_s = Unix.gettimeofday () -. t0 in
      if Sink.on () then
        Sink.emit ~ns:(wall_ns ()) (Ev.Job_done { key; elapsed_s });
      if Metrics.enabled () then begin
        Metrics.inc m_jobs_run;
        Metrics.observe m_job_elapsed elapsed_s
      end;
      Option.iter
        (fun s ->
          Status.job_finished s ~key ~ok:true ~elapsed_s
            ~sim_ns:(Driver.total_ns summary.Exp_common.outcome))
        st.cfg.status;
      Option.iter Om.tick st.cfg.export;
      note_progress st key elapsed_s;
      let stored = Results.add ~key summary in
      if stored == summary then begin
        Results.emit ~exp:j.Jobs.exp ~key
          ~design:(H.design_name j.Jobs.setting.Exp_common.design)
          ~label:j.Jobs.setting.Exp_common.label
          ~power:(Jobs.power_id j.Jobs.power)
          ~bench:j.Jobs.bench ~scale:j.Jobs.scale ~elapsed_s summary;
        match st.cfg.rcache with
        | Some rc ->
          Rcache.store rc ~key
            ~digest:(Rcache.config_digest j.Jobs.setting)
            ~elapsed_s summary
        | None -> ()
      end
  end

(* Shared worker pool: indices 0..n-1 pulled from an atomic cursor by
   [w] domains (the calling domain is one of them).  If any worker
   raises, the remaining indices still finish in the other workers and
   the first exception is re-raised after the join. *)
let pool_iter ~w n f =
  if n <= 0 then ()
  else if w <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          f i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (min w n - 1) (fun _ -> Domain.spawn worker) in
    let parent_error = try worker (); None with e -> Some e in
    let worker_error =
      List.fold_left
        (fun acc d ->
          match (try Domain.join d; None with e -> Some e) with
          | Some _ as e when acc = None -> e
          | _ -> acc)
        None spawned
    in
    match (parent_error, worker_error) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let map ?workers:w f xs =
  let w = match w with Some w -> max 1 w | None -> !default_workers in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let out = Array.make n None in
  pool_iter ~w n (fun i -> out.(i) <- Some (f arr.(i)));
  Array.to_list out
  |> List.map (function Some r -> r | None -> assert false)

(* Resolve jobs against the persistent result cache before scheduling:
   a hit lands in the results store (and the JSONL sink, with the
   cached job's original elapsed time) exactly as if it had just run,
   so the pending filter below drops it and renderers cannot tell the
   difference.  Corrupt entries were already warned + unlinked by
   {!Rcache.find} and simply stay pending. *)
let resolve_cached rc jobs =
  let hits = ref 0 in
  List.iter
    (fun j ->
      let key = Jobs.key j in
      if not (Results.mem key) then
        let digest = Rcache.config_digest j.Jobs.setting in
        match Rcache.find rc ~key ~digest with
        | None -> ()
        | Some (summary, elapsed_s) ->
          incr hits;
          if Sink.on () then
            Sink.emit ~ns:(wall_ns ()) (Ev.Cache_hit { key });
          let stored = Results.add ~key summary in
          if stored == summary then
            Results.emit ~exp:j.Jobs.exp ~key
              ~design:(H.design_name j.Jobs.setting.Exp_common.design)
              ~label:j.Jobs.setting.Exp_common.label
              ~power:(Jobs.power_id j.Jobs.power)
              ~bench:j.Jobs.bench ~scale:j.Jobs.scale ~elapsed_s summary)
    jobs;
  if !hits > 0 then Supervisor.note_cache_hits !hits

let execute ?workers:w ?config:cfg ?budget jobs =
  let w = match w with Some w -> max 1 w | None -> !default_workers in
  let cfg = match cfg with Some c -> c | None -> default_config () in
  let budget = match budget with Some f -> f | None -> fun _ -> None in
  let jobs = Jobs.dedup jobs in
  Option.iter (fun rc -> resolve_cached rc jobs) cfg.rcache;
  let pending = List.filter (fun j -> not (Results.mem (Jobs.key j))) jobs in
  let st =
    { cfg; budget; plock = Mutex.create (); finished = 0;
      total = List.length pending }
  in
  Option.iter (fun s -> Status.add_total s st.total) cfg.status;
  (match pending with
  | [] -> ()
  | pending ->
    let body () =
      match cfg.distribute with
      | Some policy ->
        (* Multi-process mode: ship the batch to the supervised worker
           fleet; every stateful concern (store, emission, cache,
           status) stays in this process. *)
        Supervisor.run ~policy ~progress:cfg.progress
          ~heartbeat_every:cfg.heartbeat_every ?status:cfg.status
          ?flight:cfg.flight ?export:cfg.export ?attrib_dir:cfg.attrib_dir
          ?rcache:cfg.rcache ~budget pending
      | None ->
        (* Materialise every shared base trace in the parent domain so
           workers share read-only instances instead of racing to build
           them (per-device jittered copies stay worker-local). *)
        if w > 1 && List.length pending > 1 then
          List.iter (fun j -> Jobs.prewarm j.Jobs.power) pending;
        let arr = Array.of_list pending in
        pool_iter ~w (Array.length arr) (fun i -> run_job st arr.(i))
    in
    (* Arm the flight recorder's ring alongside whatever sink the run
       installed (tee set up before workers spawn, torn down after the
       join). *)
    match cfg.flight with
    | Some fl -> Sink.with_tee (Flight.sink fl) body
    | None -> body ());
  Option.iter Status.write cfg.status;
  Option.iter Om.tick cfg.export
