module H = Sweep_sim.Harness

(* Worker count is process-global configuration (the -j flag), read at
   execute time.  1 means fully sequential: no domain is spawned, which
   keeps e.g. `dune runtest` and byte-for-byte reference runs on the
   plain code path. *)
let default_workers = ref (Domain.recommended_domain_count ())
let set_workers n = default_workers := max 1 n
let workers () = !default_workers

let run_job j =
  let key = Jobs.key j in
  if not (Results.mem key) then begin
    let power = Jobs.to_power j.Jobs.power in
    let t0 = Unix.gettimeofday () in
    let summary =
      Exp_common.compute ~scale:j.Jobs.scale j.Jobs.setting ~power
        j.Jobs.bench
    in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    let stored = Results.add ~key summary in
    if stored == summary then
      Results.emit ~exp:j.Jobs.exp ~key
        ~design:(H.design_name j.Jobs.setting.Exp_common.design)
        ~label:j.Jobs.setting.Exp_common.label
        ~power:(Jobs.power_id j.Jobs.power)
        ~bench:j.Jobs.bench ~scale:j.Jobs.scale ~elapsed_s summary
  end

let execute ?workers:w jobs =
  let w = match w with Some w -> max 1 w | None -> !default_workers in
  let pending =
    List.filter (fun j -> not (Results.mem (Jobs.key j))) (Jobs.dedup jobs)
  in
  match pending with
  | [] -> ()
  | pending when w = 1 || List.length pending = 1 ->
    List.iter run_job pending
  | pending ->
    (* Materialise every trace in the parent domain so workers share
       read-only instances instead of racing to build them. *)
    List.iter (fun j -> ignore (Jobs.to_power j.Jobs.power)) pending;
    let arr = Array.of_list pending in
    let n = Array.length arr in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_job arr.(i);
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min w n - 1) (fun _ -> Domain.spawn worker)
    in
    (* The calling domain is the last worker. *)
    let parent_error = try worker (); None with e -> Some e in
    let worker_error =
      List.fold_left
        (fun acc d ->
          match (try Domain.join d; None with e -> Some e) with
          | Some _ as e when acc = None -> e
          | _ -> acc)
        None spawned
    in
    (match (parent_error, worker_error) with
     | Some e, _ | None, Some e -> raise e
     | None, None -> ())
