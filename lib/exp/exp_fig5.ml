(* Fig. 5: speedups over NVP without power failure, per benchmark, for
   ReplayCache, NVSRAM and the two SweepCache search variants, with
   per-suite and overall geometric means. *)
module H = Sweep_sim.Harness
module C = Exp_common
module Table = Sweep_util.Table

let suite_of name =
  (Sweep_workloads.Registry.find name).Sweep_workloads.Workload.suite

(* The NVP baseline is implicit in every speedup column, so the job
   matrix carries it explicitly. *)
let settings_with_baseline = C.setting H.Nvp :: C.fig5_settings

let jobs () = Jobs.matrix ~exp:"fig5" settings_with_baseline C.all_names

let print_speedup_table ~title ~power ?(names = C.all_names) settings =
  Printf.printf "== %s ==\n" title;
  let t =
    Table.create ("benchmark" :: List.map (fun s -> s.C.label) settings)
  in
  let rows =
    List.map
      (fun bench -> (bench, List.map (fun s -> C.speedup s ~power bench) settings))
      names
  in
  List.iter (fun (bench, sus) -> Table.add_float_row t bench sus) rows;
  let geo pred label =
    let filtered = List.filter (fun (b, _) -> pred b) rows in
    if filtered <> [] then begin
      let per_setting idx =
        C.geomean (List.map (fun (_, sus) -> List.nth sus idx) filtered)
      in
      Table.add_float_row t label
        (List.mapi (fun idx _ -> per_setting idx) settings)
    end
  in
  if names == C.all_names then begin
    geo (fun b -> suite_of b = Sweep_workloads.Workload.Mediabench)
      "geomean(Mediabench)";
    geo (fun b -> suite_of b = Sweep_workloads.Workload.Mibench)
      "geomean(Mibench)"
  end;
  geo (fun _ -> true) "geomean(all)";
  Table.print t;
  print_newline ()

let run () =
  print_speedup_table
    ~title:"Fig. 5 — speedups over NVP, no power failure"
    ~power:Sweep_sim.Driver.Unlimited C.fig5_settings
