(** Supervised multi-process execution: worker fleets with heartbeat
    liveness, retry/backoff, poison-job quarantine.

    {!run} shards a pending job list across [workers] re-exec'd copies
    of the current binary (see {!Worker}), routes jobs by a stable hash
    of their canonical key, and supervises: dead workers are reaped
    with [waitpid], hung workers are SIGKILLed after a heartbeat-gap
    timeout, in-flight jobs retry up to [retries] extra times before
    quarantine as structured {!Results.failure}s, and respawns run
    under seeded exponential backoff bounded by a pool-lifetime
    [respawn_budget] — when it is exhausted the run finishes degraded
    on the surviving workers.

    The parent owns the results store, JSONL emission, result cache and
    telemetry, so a supervised run's outputs are byte-identical to the
    in-process executor's.  The worker pool persists across calls (a
    sweeptune search executes many batches); {!shutdown} tears it down,
    and process exit does too (workers exit on stdin EOF). *)

type policy = {
  workers : int;
  retries : int;  (** extra attempts after a worker death (default 2) *)
  worker_timeout_s : float;
      (** SIGKILL a busy worker silent this long; [<= 0] disables
          (default 60) *)
  respawn_budget : int;  (** pool-lifetime respawn cap (default 8) *)
  backoff_base_s : float;
  backoff_max_s : float;
  seed : int;  (** backoff jitter + chaos chooser seed (default 42) *)
  chaos_kill_after : int option;
      (** fault injection: SIGKILL a seeded-chosen worker once, after
          this many completed jobs (CI chaos harness) *)
}

val policy :
  ?retries:int ->
  ?worker_timeout_s:float ->
  ?respawn_budget:int ->
  ?backoff_base_s:float ->
  ?backoff_max_s:float ->
  ?seed:int ->
  ?chaos_kill_after:int ->
  workers:int ->
  unit ->
  policy

val route_hash : string -> int
(** Stable job-routing hash (FNV-1a over the canonical key, masked to
    30 bits): [route_hash key mod workers] picks the worker slot.
    Independent of process randomisation and OCaml version, so a job
    routes identically in every run — exposed for sharding-balance
    tests. *)

val backoff_delay_s : policy -> slot:int -> nth:int -> float
(** Delay before respawn [nth] (0-based) of [slot]: exponential in
    [nth], capped at [backoff_max_s], with up to +50% jitter drawn
    from (seed, slot, nth) alone — a pure function, independent of
    scheduling order and worker count, so schedules are reproducible
    (tested). *)

type stats = {
  mutable spawns : int;
  mutable deaths : int;
  mutable job_retries : int;
  mutable quarantined : int;
  mutable cache_hits : int;
  mutable degraded : bool;
}

val stats : unit -> stats
(** Process-lifetime accumulator (sweeptune's rounds add up) — the
    binaries derive their exit code from [degraded] / [quarantined]. *)

val reset_stats : unit -> unit

val note_cache_hits : int -> unit
(** Called by {!Executor} when the persistent cache satisfies jobs
    before dispatch, so the end-of-run summary covers both modes. *)

val run :
  policy:policy ->
  ?progress:bool ->
  ?heartbeat_every:int ->
  ?status:Status.t ->
  ?flight:Sweep_obs.Flight.t ->
  ?export:Sweep_obs.Openmetrics.exporter ->
  ?attrib_dir:string ->
  ?rcache:Rcache.t ->
  ?budget:(Jobs.t -> float option) ->
  Jobs.t list ->
  unit
(** Execute [pending] (already deduplicated and filtered against
    {!Results}) on the supervised pool.  Returns when every job is in
    the results store or the failure log.  When [worker_timeout_s > 0]
    and [heartbeat_every <= 0], heartbeats are forced on at
    {!Sweep_obs.Heartbeat.default_every} — liveness needs a signal. *)

val shutdown : unit -> unit
(** Quit + reap the pool (SIGKILL stragglers after a grace period).
    Idempotent; safe without a pool. *)
