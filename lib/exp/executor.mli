(** Parallel job execution on an OCaml 5 domain pool.

    [execute jobs] deduplicates the job list by canonical key, drops
    jobs whose summaries are already in {!Results}, and evaluates the
    rest with [min workers n] domains pulling from a shared atomic
    cursor.  Each worker runs {!Exp_common.compute} — a pure function of
    the job — and publishes into the mutex-guarded store, so the store
    contents are independent of worker count and schedule; the
    determinism tests assert [-j 1] and [-j 4] snapshots are equal.

    Domain-safety of the substrate this relies on (audited in
    DESIGN.md): traces are pre-materialised in the parent domain and
    immutable afterwards; compiler gensym counters are per-invocation;
    machines, stats and RNGs are per-job instances. *)

val set_workers : int -> unit
(** Process-wide default worker count (the -j flag); clamped to >= 1. *)

val workers : unit -> int
(** Current default (initially [Domain.recommended_domain_count ()]). *)

(** Per-run telemetry/reporting configuration, threaded through
    {!execute} — replaces the old global progress toggle. *)
type config = {
  progress : bool;
      (** print "[k/n] key (elapsed)" per finished job to stderr
          (mutex-serialised across workers) *)
  heartbeat_every : int;
      (** instructions between in-run {!Sweep_obs.Event.Heartbeat}
          beats; [<= 0] disables heartbeats entirely *)
  status : Status.t option;
      (** live status.json aggregation; fed by job transitions and (when
          [heartbeat_every > 0]) heartbeat observers *)
  flight : Sweep_obs.Flight.t option;
      (** crash flight recorder: its ring is teed alongside the
          installed sink for the duration of {!execute}, and every
          captured job failure dumps a post-mortem artifact *)
  export : Sweep_obs.Openmetrics.exporter option;
      (** periodic OpenMetrics re-export of the metrics registry *)
  attrib_dir : string option;
      (** when set, every executed job runs with per-PC attribution
          armed and writes [<dir>/<sanitised key>.attrib.json] (plus a
          [.folded] collapsed-stack twin); profiles are a pure function
          of the job, so they are byte-identical at any [-j] *)
  rcache : Rcache.t option;
      (** persistent content-addressed result cache: jobs whose
          (key, config digest) is cached skip simulation entirely
          (emitting {!Sweep_obs.Event.Cache_hit}); executed jobs are
          stored back *)
  distribute : Supervisor.policy option;
      (** when set, pending jobs run on a supervised multi-process
          worker fleet (see {!Supervisor}) instead of the in-process
          domain pool; outputs are byte-identical either way *)
}

val config :
  ?progress:bool ->
  ?heartbeat_every:int ->
  ?status:Status.t ->
  ?flight:Sweep_obs.Flight.t ->
  ?export:Sweep_obs.Openmetrics.exporter ->
  ?attrib_dir:string ->
  ?rcache:Rcache.t ->
  ?distribute:Supervisor.policy ->
  unit ->
  config
(** Everything off/absent by default. *)

val default_config : unit -> config
(** The config used when {!execute} is called without one: everything
    off/absent. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map on the same domain pool as
    {!execute}: results line up with inputs regardless of worker count.
    [f] must be safe to call from multiple domains.  With 1 worker (or a
    single element) no domain is spawned. *)

val execute :
  ?workers:int ->
  ?config:config ->
  ?budget:(Jobs.t -> float option) ->
  Jobs.t list ->
  unit
(** Populate {!Results} with every job's summary.  [workers] overrides
    the process default.  With 1 worker no domain is spawned.  If a
    worker raises (e.g. {!Sweep_sim.Driver.Stagnation}), the remaining
    jobs still finish and the first exception is re-raised.  Each job
    emits [Job_start]/[Job_done] events when a sink is installed and
    bumps [exp.*] metrics when the registry is enabled.

    [config] attaches per-run telemetry (progress lines, heartbeats,
    live status, flight recorder, OpenMetrics export); defaults to
    {!default_config}.  [budget] maps a job to an optional graceful
    simulated-time ceiling in ns (sweeptune's early-stop); a
    budget-stopped job stores a summary with
    [outcome.completed = false]. *)
