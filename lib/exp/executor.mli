(** Parallel job execution on an OCaml 5 domain pool.

    [execute jobs] deduplicates the job list by canonical key, drops
    jobs whose summaries are already in {!Results}, and evaluates the
    rest with [min workers n] domains pulling from a shared atomic
    cursor.  Each worker runs {!Exp_common.compute} — a pure function of
    the job — and publishes into the mutex-guarded store, so the store
    contents are independent of worker count and schedule; the
    determinism tests assert [-j 1] and [-j 4] snapshots are equal.

    Domain-safety of the substrate this relies on (audited in
    DESIGN.md): traces are pre-materialised in the parent domain and
    immutable afterwards; compiler gensym counters are per-invocation;
    machines, stats and RNGs are per-job instances. *)

val set_workers : int -> unit
(** Process-wide default worker count (the -j flag); clamped to >= 1. *)

val workers : unit -> int
(** Current default (initially [Domain.recommended_domain_count ()]). *)

val set_progress : bool -> unit
(** When on, each finished job prints a "[k/n] key (elapsed)" line to
    stderr (mutex-serialised across workers). *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map on the same domain pool as
    {!execute}: results line up with inputs regardless of worker count.
    [f] must be safe to call from multiple domains.  With 1 worker (or a
    single element) no domain is spawned. *)

val execute : ?workers:int -> Jobs.t list -> unit
(** Populate {!Results} with every job's summary.  [workers] overrides
    the process default.  With 1 worker no domain is spawned.  If a
    worker raises (e.g. {!Sweep_sim.Driver.Stagnation}), the remaining
    jobs still finish and the first exception is re-raised.  Each job
    emits [Job_start]/[Job_done] events when a sink is installed and
    bumps [exp.*] metrics when the registry is enabled. *)
