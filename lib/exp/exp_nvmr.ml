(* Fig. 14: SweepCache vs NvMR across capacitor sizes — speedups over NVP
   (bars) and SweepCache's energy saving over NvMR (curve). *)
module H = Sweep_sim.Harness
module C = Exp_common
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace
module Table = Sweep_util.Table

let caps = [ 470e-9; 1e-6; 2e-6; 5e-6; 10e-6; 100e-6; 1e-3 ]

let jobs () =
  Jobs.matrix ~exp:"fig14"
    ~powers:(List.map (fun farads -> Jobs.harvested ~farads Trace.Rf_office) caps)
    [ C.setting H.Nvp; C.setting H.Nvmr; C.sweep_empty_bit ]
    C.subset_names

let run () =
  Printf.printf
    "== Fig. 14 — SweepCache vs NvMR across capacitors (RFOffice, subset) ==\n";
  let t =
    Table.create
      [ "capacitor"; "NvMR speedup"; "Sweep speedup"; "energy saving %" ]
  in
  List.iter
    (fun farads ->
      let power = C.power ~farads (C.rf_office ()) in
      let speed s = C.geomean (List.map (C.speedup s ~power) C.subset_names) in
      let total s =
        Sweep_util.Stats.mean
          (List.map
             (fun b -> Driver.total_joules (C.run s ~power b).C.outcome)
             C.subset_names)
      in
      let nvmr = C.setting H.Nvmr in
      let e_nvmr = total nvmr in
      let e_sweep = total C.sweep_empty_bit in
      Table.add_float_row t (Exp_capacitor.cap_label farads)
        [
          speed nvmr;
          speed C.sweep_empty_bit;
          100.0 *. (e_nvmr -. e_sweep) /. e_nvmr;
        ])
    caps;
  Table.print t;
  print_newline ()
