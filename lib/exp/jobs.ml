module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace

type power_spec =
  | Unlimited
  | Harvested of {
      kind : Trace.kind;
      farads : float;
      v_max : float;
      v_min : float;
    }

let unlimited = Unlimited

(* Defaults mirror Driver.harvested / Exp_common.power so a spec and the
   Driver.power a render function builds by hand produce the same key. *)
let harvested ?(farads = 470e-9) ?(v_max = 3.5) ?(v_min = 2.8) kind =
  Harvested { kind; farads; v_max; v_min }

let power_id = function
  | Unlimited -> "unlimited"
  | Harvested { kind; farads; v_max; v_min } ->
    Printf.sprintf "%s/%g/%g/%g" (Trace.kind_name kind) farads v_max v_min

let to_power = function
  | Unlimited -> Driver.Unlimited
  | Harvested { kind; farads; v_max; v_min } ->
    Driver.harvested ~v_max ~v_min ~trace:(Exp_common.trace_of kind) ~farads ()

type t = {
  exp : string;
  setting : Exp_common.setting;
  power : power_spec;
  bench : string;
  scale : float;
}

let job ~exp ?(scale = 1.0) setting ~power bench =
  { exp; setting; power; bench; scale }

let key j =
  Exp_common.key_of ~label:j.setting.Exp_common.label
    ~design:(H.design_name j.setting.Exp_common.design)
    ~power:(power_id j.power) ~bench:j.bench ~scale:j.scale

let matrix ~exp ?scale ?(powers = [ Unlimited ]) settings benches =
  List.concat_map
    (fun power ->
      List.concat_map
        (fun setting ->
          List.map (fun bench -> job ~exp ?scale setting ~power bench) benches)
        settings)
    powers

let dedup jobs =
  let seen = Hashtbl.create (List.length jobs) in
  List.filter
    (fun j ->
      let k = key j in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    jobs
