module H = Sweep_sim.Harness
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace

type power_spec =
  | Unlimited
  | Harvested of {
      kind : Trace.kind;
      farads : float;
      v_max : float;
      v_min : float;
    }
  | Jittered of {
      kind : Trace.kind;
      farads : float;
      v_max : float;
      v_min : float;
      shift_steps : int;
      amp_permille : int;
      drop_bp : int;
      drop_seed : int;
    }

let unlimited = Unlimited

(* Defaults mirror Driver.harvested / Exp_common.power so a spec and the
   Driver.power a render function builds by hand produce the same key. *)
let harvested ?(farads = 470e-9) ?(v_max = 3.5) ?(v_min = 2.8) kind =
  Harvested { kind; farads; v_max; v_min }

(* Jitter parameters are integers by design: the key below renders them
   exactly, so key-equal specs always simulate identically (a float
   parameter rounded through %g could collide in the key while
   differing in the trace). *)
let jittered ?(farads = 470e-9) ?(v_max = 3.5) ?(v_min = 2.8) ~shift_steps
    ~amp_permille ~drop_bp ~drop_seed kind =
  if shift_steps < 0 then
    invalid_arg "Jobs.jittered: shift_steps must be >= 0";
  if amp_permille < 0 then
    invalid_arg "Jobs.jittered: amp_permille must be >= 0";
  if drop_bp < 0 || drop_bp > 10_000 then
    invalid_arg "Jobs.jittered: drop_bp must be in [0, 10000]";
  Jittered
    { kind; farads; v_max; v_min; shift_steps; amp_permille; drop_bp;
      drop_seed }

let jitter_tag ~shift_steps ~amp_permille ~drop_bp ~drop_seed =
  Printf.sprintf "ts%d.am%d.dp%d.ds%d" shift_steps amp_permille drop_bp
    drop_seed

let power_id = function
  | Unlimited -> "unlimited"
  | Harvested { kind; farads; v_max; v_min } ->
    Printf.sprintf "%s/%g/%g/%g" (Trace.kind_name kind) farads v_max v_min
  | Jittered
      { kind; farads; v_max; v_min; shift_steps; amp_permille; drop_bp;
        drop_seed } ->
    Printf.sprintf "%s~%s/%g/%g/%g" (Trace.kind_name kind)
      (jitter_tag ~shift_steps ~amp_permille ~drop_bp ~drop_seed)
      farads v_max v_min

(* The canonical jitter pipeline: rotate, then scale, then drop.  Drop
   indices are drawn over the rotated grid, so the order is part of the
   device's identity — sweepsim's replay flags apply the same order. *)
let apply_jitter trace ~shift_steps ~amp_permille ~drop_bp ~drop_seed =
  let t = Trace.time_shift trace (float_of_int shift_steps *. Trace.sample_dt trace) in
  let t = Trace.scale t (float_of_int amp_permille /. 1000.0) in
  let t =
    Trace.drop_samples t ~seed:drop_seed
      ~frac:(float_of_int drop_bp /. 10_000.0)
  in
  Trace.with_tag t (jitter_tag ~shift_steps ~amp_permille ~drop_bp ~drop_seed)

let to_power = function
  | Unlimited -> Driver.Unlimited
  | Harvested { kind; farads; v_max; v_min } ->
    Driver.harvested ~v_max ~v_min ~trace:(Exp_common.trace_of kind) ~farads ()
  | Jittered
      { kind; farads; v_max; v_min; shift_steps; amp_permille; drop_bp;
        drop_seed } ->
    (* The jittered copy is per-device and transient — only the shared
       base trace goes through the memo table, or a 100k-device fleet
       would pin 100k 4.8 MB arrays. *)
    let trace =
      apply_jitter (Exp_common.trace_of kind) ~shift_steps ~amp_permille
        ~drop_bp ~drop_seed
    in
    Driver.harvested ~v_max ~v_min ~trace ~farads ()

(* Warm the shared trace memo without materialising per-device copies:
   what the executor calls in the parent before spawning domains. *)
let prewarm = function
  | Unlimited -> ()
  | Harvested { kind; _ } | Jittered { kind; _ } ->
    ignore (Exp_common.trace_of kind)

type t = {
  exp : string;
  setting : Exp_common.setting;
  power : power_spec;
  bench : string;
  scale : float;
}

let job ~exp ?(scale = 1.0) setting ~power bench =
  { exp; setting; power; bench; scale }

let key j =
  Exp_common.key_of ~label:j.setting.Exp_common.label
    ~design:(H.design_name j.setting.Exp_common.design)
    ~power:(power_id j.power) ~bench:j.bench ~scale:j.scale

let matrix ~exp ?scale ?(powers = [ Unlimited ]) settings benches =
  List.concat_map
    (fun power ->
      List.concat_map
        (fun setting ->
          List.map (fun bench -> job ~exp ?scale setting ~power bench) benches)
        settings)
    powers

let dedup jobs =
  let seen = Hashtbl.create (List.length jobs) in
  List.filter
    (fun j ->
      let k = key j in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    jobs
