(* Table 2 (average power outages per capacitor size) and Fig. 9
   (speedups across capacitor sizes, relative to same-capacitor NVP and
   to a fixed-100nF NVP).  RFOffice trace, the 10-benchmark subset. *)
module H = Sweep_sim.Harness
module C = Exp_common
module Table = Sweep_util.Table
module Driver = Sweep_sim.Driver
module Trace = Sweep_energy.Power_trace

let caps = [ 100e-9; 470e-9; 1e-6; 10e-6; 100e-6; 1e-3 ]

let cap_label f =
  if f >= 1e-3 then Printf.sprintf "%gmF" (f /. 1e-3)
  else if f >= 1e-6 then Printf.sprintf "%guF" (f /. 1e-6)
  else Printf.sprintf "%gnF" (f /. 1e-9)

let settings =
  [
    C.setting H.Nvp;
    C.setting H.Replay;
    C.setting H.Nvsram;
    C.sweep_empty_bit;
  ]

(* Both tables sweep the same settings × capacitors × subset matrix on
   the RFOffice trace (NVP rows double as Fig. 9's speedup baseline). *)
let rf_office_powers =
  List.map (fun farads -> Jobs.harvested ~farads Trace.Rf_office) caps

let jobs_for exp =
  Jobs.matrix ~exp ~powers:rf_office_powers settings C.subset_names

let jobs_table2 () = jobs_for "tab2"
let jobs_fig9 () = jobs_for "fig9"

let avg_outages s farads =
  let power = C.power ~farads (C.rf_office ()) in
  let outs =
    List.map
      (fun b ->
        float_of_int (C.run s ~power b).C.outcome.Driver.outages)
      C.subset_names
  in
  Sweep_util.Stats.mean outs

let run_table2 () =
  Printf.printf
    "== Table 2 — average power outages vs capacitor (RFOffice, %d-benchmark subset) ==\n"
    (List.length C.subset_names);
  let t = Table.create ("capacitor" :: List.map (fun s -> s.C.label) settings) in
  List.iter
    (fun farads ->
      Table.add_float_row t (cap_label farads)
        (List.map (fun s -> avg_outages s farads) settings))
    caps;
  Table.print t;
  print_newline ()

let run_fig9 () =
  Printf.printf
    "== Fig. 9 — speedups over NVP across capacitor sizes (RFOffice, subset) ==\n";
  let non_nvp = List.tl settings in
  let t =
    Table.create
      ("capacitor"
      :: (List.map (fun s -> s.C.label) non_nvp
         @ [ "Sweep vs NVP@100nF (abs)" ]))
  in
  let nvp_total farads bench =
    C.nvp_time ~power:(C.power ~farads (C.rf_office ())) bench
  in
  List.iter
    (fun farads ->
      let power = C.power ~farads (C.rf_office ()) in
      let speedups =
        List.map
          (fun s -> C.geomean (List.map (C.speedup s ~power) C.subset_names))
          non_nvp
      in
      (* The line series: everything relative to the 100 nF NVP. *)
      let abs_sweep =
        C.geomean
          (List.map
             (fun b ->
               nvp_total 100e-9 b
               /. Driver.total_ns (C.run C.sweep_empty_bit ~power b).C.outcome)
             C.subset_names)
      in
      Table.add_float_row t (cap_label farads) (speedups @ [ abs_sweep ]))
    caps;
  Table.print t;
  print_newline ()
