(* Hidden worker mode: the half of supervised execution that runs in
   the child processes.

   The binary re-execs itself with {!argv_flag}; [main] then speaks
   {!Wire} over stdin/stdout: read a frame, simulate, answer.  A worker
   is deliberately dumb — no results store, no sinks, no cache, no
   status file: it computes summaries and streams heartbeats, and every
   stateful concern (dedup, cache, retry, quarantine, telemetry) lives
   in exactly one place, the parent.  stderr stays untouched for crash
   noise the supervisor relays verbatim. *)

let argv_flag = "--sweepcache-worker"

let send frame =
  print_string (Wire.line_of_from_worker frame);
  print_newline ();
  flush stdout

let run_job ~heartbeat_every ~attrib_dir (key : string) (spec : Jobs.t)
    sim_budget_ns =
  let observer (hb : Sweep_obs.Heartbeat.t) =
    send
      (Wire.Beat
         {
           key;
           instructions = hb.Sweep_obs.Heartbeat.instructions;
           sim_ns = Sweep_obs.Heartbeat.sim_ns hb;
           reboots = hb.Sweep_obs.Heartbeat.reboots;
           nvm_writes = hb.Sweep_obs.Heartbeat.nvm_writes;
           beats = Sweep_obs.Heartbeat.beats hb;
         })
  in
  let heartbeat =
    Sweep_obs.Heartbeat.create ~observer ~every:heartbeat_every ()
  in
  let t0 = Unix.gettimeofday () in
  match
    Exp_common.compute ~scale:spec.Jobs.scale ?sim_budget_ns ~heartbeat
      ?attrib_dir spec.Jobs.setting
      ~power:(Jobs.to_power spec.Jobs.power)
      spec.Jobs.bench
  with
  | summary ->
    send (Wire.Done { key; elapsed_s = Unix.gettimeofday () -. t0; summary })
  | exception e ->
    let backtrace = Printexc.get_backtrace () in
    send (Wire.Failed { key; error = Printexc.to_string e; backtrace })

let main () =
  (* A dying parent closes our stdout; the next send must raise (and
     end this worker), not deliver a SIGPIPE. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  Printexc.record_backtrace true;
  let heartbeat_every = ref Sweep_obs.Heartbeat.default_every in
  let attrib_dir = ref None in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> 0
    | line -> (
      match Wire.to_worker_of_line line with
      | None -> loop () (* torn/unknown frame: skip *)
      | Some Wire.Quit -> 0
      | Some (Wire.Init { heartbeat_every = every; attrib_dir = dir }) ->
        heartbeat_every := every;
        attrib_dir := dir;
        loop ()
      | Some (Wire.Job { key; spec; sim_budget_ns }) ->
        run_job ~heartbeat_every:!heartbeat_every ~attrib_dir:!attrib_dir key
          spec sim_budget_ns;
        loop ())
  in
  try loop ()
  with Sys_error _ ->
    (* stdout/stdin gone: the supervisor died or killed the pipe. *)
    1
