(** Worker-process half of supervised execution.

    The binary re-execs itself with {!argv_flag} as [argv.(1)]; the
    entry point then speaks {!Wire} frames over stdin/stdout until EOF
    or a [Quit] frame.  Workers hold no state beyond the last [Init]
    frame — every cross-job concern lives in the supervisor. *)

val argv_flag : string
(** ["--sweepcache-worker"] — hidden from [--help]; checked by the
    binaries before handing argv to cmdliner. *)

val main : unit -> int
(** Frame loop; returns the process exit code (0 on EOF/[Quit], 1 when
    the pipe to the supervisor broke). *)
