(* Figs. 6 & 7: speedups over NVP under the RFHome / RFOffice traces with
   the 470 nF capacitor. *)
module C = Exp_common
module Trace = Sweep_energy.Power_trace

let jobs_kind exp kind =
  Jobs.matrix ~exp
    ~powers:[ Jobs.harvested kind ]
    Exp_fig5.settings_with_baseline C.all_names

let jobs_rfhome () = jobs_kind "fig6" Trace.Rf_home
let jobs_rfoffice () = jobs_kind "fig7" Trace.Rf_office

let run_kind kind fig =
  let trace = C.trace_of kind in
  Exp_fig5.print_speedup_table
    ~title:
      (Printf.sprintf "Fig. %d — speedups over NVP, %s trace (470 nF)" fig
         (Trace.kind_name kind))
    ~power:(C.power trace) C.fig5_settings

let run_rfhome () = run_kind Trace.Rf_home 6
let run_rfoffice () = run_kind Trace.Rf_office 7
