(* §6.5: instruction counts.  ReplayCache's clwb+fence instrumentation
   vs SweepCache's checkpoint stores vs the plain (JIT-design) binary —
   static and dynamic. *)
module H = Sweep_sim.Harness
module C = Exp_common
module Pipeline = Sweep_compiler.Pipeline
module Table = Sweep_util.Table

(* Static counts are recompiled at render time (cheap); the dynamic
   counts come from the results store. *)
let jobs () =
  Jobs.matrix ~exp:"icount"
    [ C.setting H.Nvp; C.setting H.Sweep; C.setting H.Replay ]
    C.all_names

let run () =
  Printf.printf "== §6.5 — instruction counts ==\n";
  let t =
    Table.create
      [
        "benchmark"; "plain"; "sweep"; "replay"; "sweep/plain"; "replay/sweep";
        "dyn sweep/plain"; "dyn replay/sweep";
      ]
  in
  let r_sp = ref [] and r_rs = ref [] and d_sp = ref [] and d_rs = ref [] in
  List.iter
    (fun bench ->
      let w = Sweep_workloads.Registry.find bench in
      let ast = Sweep_workloads.Workload.program w in
      let static d = (H.compile d ast).Pipeline.stats.Pipeline.static_instrs in
      let dynamic d =
        (C.run (C.setting d) ~power:Sweep_sim.Driver.Unlimited bench)
          .C.outcome.Sweep_sim.Driver.instructions
      in
      let p = static H.Nvp and s = static H.Sweep and r = static H.Replay in
      let dp = dynamic H.Nvp
      and ds = dynamic H.Sweep
      and dr = dynamic H.Replay in
      let ratio a b = float_of_int a /. float_of_int b in
      r_sp := ratio s p :: !r_sp;
      r_rs := ratio r s :: !r_rs;
      d_sp := ratio ds dp :: !d_sp;
      d_rs := ratio dr ds :: !d_rs;
      Table.add_row t
        [
          bench; string_of_int p; string_of_int s; string_of_int r;
          Table.float_cell (ratio s p);
          Table.float_cell (ratio r s);
          Table.float_cell (ratio ds dp);
          Table.float_cell (ratio dr ds);
        ])
    C.all_names;
  Table.add_row t
    [
      "geomean"; ""; ""; "";
      Table.float_cell (C.geomean !r_sp);
      Table.float_cell (C.geomean !r_rs);
      Table.float_cell (C.geomean !d_sp);
      Table.float_cell (C.geomean !d_rs);
    ];
  Table.print t;
  print_newline ()
