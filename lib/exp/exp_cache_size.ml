(* Fig. 8: speedups over NVP across cache sizes (512 B – 16 kB), RFOffice
   trace, 470 nF. *)
module H = Sweep_sim.Harness
module C = Exp_common
module Config = Sweep_machine.Config
module Trace = Sweep_energy.Power_trace
module Table = Sweep_util.Table

let sizes = [ 512; 1024; 2048; 4096; 8192; 16384 ]

let mk size design label =
  C.setting ~label:(Printf.sprintf "%s@%d" label size)
    ~config:(Config.with_cache Config.default ~size)
    design

let settings_for size =
  [ mk size H.Replay "replay"; mk size H.Nvsram "nvsram"; mk size H.Sweep "sweep" ]

let jobs () =
  Jobs.matrix ~exp:"fig8"
    ~powers:[ Jobs.harvested Trace.Rf_office ]
    (C.setting H.Nvp :: List.concat_map settings_for sizes)
    C.subset_names

let run () =
  Printf.printf
    "== Fig. 8 — speedups over NVP across cache sizes (RFOffice, subset) ==\n";
  let power = C.power (C.rf_office ()) in
  let t = Table.create [ "cache"; "ReplayCache"; "NVSRAM"; "SweepCache" ] in
  List.iter
    (fun size ->
      let speed s = C.geomean (List.map (C.speedup s ~power) C.subset_names) in
      Table.add_float_row t
        (if size >= 1024 then Printf.sprintf "%dkB" (size / 1024)
         else Printf.sprintf "%dB" size)
        (List.map speed (settings_for size)))
    sizes;
  Table.print t;
  print_newline ()
