(* Fig. 11: propagation-delay sensitivity.
   (a) SweepCache's restore delay raised to the JIT detectors' 10.3 us;
   (b) JIT detectors reduced to the literature's fastest (0.5/3.0 us).
   Speedups over NVP across capacitor sizes, RFOffice trace. *)
module H = Sweep_sim.Harness
module C = Exp_common
module Config = Sweep_machine.Config
module Detector = Sweep_energy.Detector
module Trace = Sweep_energy.Power_trace
module Table = Sweep_util.Table

let caps = [ 100e-9; 470e-9; 1e-6; 10e-6; 100e-6; 1e-3 ]

let bench_subset = [ "adpcmdec"; "sha"; "susans"; "fft"; "blowfishenc" ]

let jit_with_delays ~v_backup ~v_restore ~t_phl_ns ~t_plh_ns =
  Detector.with_delays (Detector.jit ~v_backup ~v_restore) ~t_phl_ns ~t_plh_ns

(* (a) SweepCache slowed to the JIT propagation delays. *)
let settings_a =
  let slow_sweep_det =
    Detector.with_delays (Detector.sweep ~v_restore:3.3) ~t_phl_ns:1_500.0
      ~t_plh_ns:10_300.0
  in
  [
    C.setting H.Replay;
    C.setting H.Nvsram;
    C.setting ~label:"Sweep(slow det.)"
      ~config:(Config.with_detector Config.default slow_sweep_det)
      H.Sweep;
    C.sweep_empty_bit;
  ]

(* (b) JIT designs sped up to the fastest published delays. *)
let settings_b =
  let fast_replay = jit_with_delays ~v_backup:2.9 ~v_restore:3.2
      ~t_phl_ns:500.0 ~t_plh_ns:3_000.0
  in
  let fast_nvsram = jit_with_delays ~v_backup:3.2 ~v_restore:3.4
      ~t_phl_ns:500.0 ~t_plh_ns:3_000.0
  in
  [
    C.setting ~label:"Replay(fast det.)"
      ~config:(Config.with_detector Config.default fast_replay)
      H.Replay;
    C.setting ~label:"NVSRAM(fast det.)"
      ~config:(Config.with_detector Config.default fast_nvsram)
      H.Nvsram;
    C.sweep_empty_bit;
  ]

let jobs () =
  Jobs.matrix ~exp:"fig11"
    ~powers:(List.map (fun farads -> Jobs.harvested ~farads Trace.Rf_office) caps)
    (C.setting H.Nvp :: (settings_a @ settings_b))
    bench_subset

let speed_at s farads =
  let power = C.power ~farads (C.rf_office ()) in
  C.geomean (List.map (C.speedup s ~power) bench_subset)

let print_setting_table title settings =
  Printf.printf "%s\n" title;
  let t = Table.create ("capacitor" :: List.map (fun s -> s.C.label) settings) in
  List.iter
    (fun farads ->
      Table.add_float_row t (Exp_capacitor.cap_label farads)
        (List.map (fun s -> speed_at s farads) settings))
    caps;
  Table.print t;
  print_newline ()

let run () =
  print_setting_table
    "== Fig. 11(a) — SweepCache's propagation delay set to the JIT designs' =="
    settings_a;
  print_setting_table
    "== Fig. 11(b) — JIT designs' propagation delay reduced to 0.5/3.0 us =="
    settings_b
