(* Chrome trace-event / Perfetto JSON sink.

   Track layout (the "one coherent timeline" of the paper's §6.3 story):
   - pid 0 "simulation"
       tid 0 "CPU"           region begin/end spans, stalls, miss markers
       tid 1 "power"         off spans (power-down → reboot), backup/restore
       tid 2+i "buffer i"    fill / flush / drain spans per persist buffer
       counter "capacitor V" the voltage trajectory
   - pid 1 "executor"
       one tid per worker domain, job spans

   Timestamps arrive in (simulated or wall) nanoseconds and are written
   in microseconds with 3 decimals, preserving ns resolution.  Events
   may be emitted out of timestamp order (phase spans are scheduled into
   the future); viewers sort on load.  A mutex serialises writes, and
   the JSON framing is completed by [close]. *)

let sim_pid = 0
let exec_pid = 1
let cpu_tid = 0
let power_tid = 1
let buf_tid buf = 2 + buf
let tune_tid = 0 (* executor process: worker tids are domain ids >= 1 *)
let sup_tid = -1 (* executor process: supervisor track (parent only) *)

type state = {
  lock : Mutex.t;
  oc : out_channel;
  named : (int * int, unit) Hashtbl.t; (* (pid, tid) with thread_name sent *)
  mutable first : bool;
  mutable closed : bool;
}

let record st line =
  if st.first then st.first <- false else output_string st.oc ",\n";
  output_string st.oc line

let name_thread st ~pid ~tid name =
  if not (Hashtbl.mem st.named (pid, tid)) then begin
    Hashtbl.replace st.named (pid, tid) ();
    record st
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
          \"args\":{\"name\":%s}}"
         pid tid (Event.json_string name))
  end

let us ns = ns /. 1000.0

let args_field ev =
  match Event.json_args ev with
  | "" -> ""
  | fields -> Printf.sprintf ",\"args\":{%s}" fields

let span st ~tid ~name ~cat ~start_ns ~dur_ns ev =
  record st
    (Printf.sprintf
       "{\"name\":%s,\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
        \"pid\":%d,\"tid\":%d%s}"
       (Event.json_string name) cat (us start_ns)
       (us (max 0.0 dur_ns))
       sim_pid tid (args_field ev))

let mark st ?(pid = sim_pid) ~tid ~ns ev =
  record st
    (Printf.sprintf
       "{\"name\":%s,\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\
        \"pid\":%d,\"tid\":%d%s}"
       (Event.json_string (Event.name ev))
       (Event.category_name (Event.category ev))
       (us ns) pid tid (args_field ev))

let begin_end st ~pid ~tid ~ns ~ph ev =
  record st
    (Printf.sprintf
       "{\"name\":%s,\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":%d,\
        \"tid\":%d%s}"
       (Event.json_string (Event.name ev))
       (Event.category_name (Event.category ev))
       ph (us ns) pid tid (args_field ev))

let counter st ~ns ~name ~series value =
  record st
    (Printf.sprintf
       "{\"name\":%s,\"cat\":\"power\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\
        \"args\":{\"%s\":%.4f}}"
       (Event.json_string name) (us ns) sim_pid series value)

let write st ~ns ev =
  if not st.closed then begin
    let open Event in
    match ev with
    | Region_begin _ ->
      name_thread st ~pid:sim_pid ~tid:cpu_tid "CPU";
      begin_end st ~pid:sim_pid ~tid:cpu_tid ~ns ~ph:'B' ev
    | Region_end _ -> begin_end st ~pid:sim_pid ~tid:cpu_tid ~ns ~ph:'E' ev
    | Buf_phase { buf; phase; start_ns; end_ns; seq = _ } ->
      name_thread st ~pid:sim_pid ~tid:(buf_tid buf)
        (Printf.sprintf "persist buffer %d" buf);
      span st ~tid:(buf_tid buf) ~name:(Event.name ev)
        ~cat:(Printf.sprintf "buffer,phase%d" (Event.phase_index phase))
        ~start_ns ~dur_ns:(end_ns -. start_ns) ev
    | Buf_wait { ns = dur; _ } ->
      span st ~tid:cpu_tid ~name:(Event.name ev) ~cat:"buffer"
        ~start_ns:ns ~dur_ns:dur ev
    | Waw_stall { ns = dur; _ } ->
      span st ~tid:cpu_tid ~name:(Event.name ev) ~cat:"buffer" ~start_ns:ns
        ~dur_ns:dur ev
    | Buffer_search _ | Buffer_bypass | Cache_miss _ | Cache_writeback _
    | Halt | Heartbeat _ | Dropped _ ->
      mark st ~tid:cpu_tid ~ns ev
    | Power_down { volts } ->
      name_thread st ~pid:sim_pid ~tid:power_tid "power";
      counter st ~ns ~name:"capacitor V" ~series:"V" volts;
      begin_end st ~pid:sim_pid ~tid:power_tid ~ns ~ph:'B'
        (Mark { name = "off"; cat = Power })
    | Reboot _ ->
      name_thread st ~pid:sim_pid ~tid:power_tid "power";
      begin_end st ~pid:sim_pid ~tid:power_tid ~ns ~ph:'E'
        (Mark { name = "off"; cat = Power });
      mark st ~tid:power_tid ~ns ev
    | Death { volts } ->
      name_thread st ~pid:sim_pid ~tid:power_tid "power";
      counter st ~ns ~name:"capacitor V" ~series:"V" volts;
      mark st ~tid:power_tid ~ns ev
    | Backup _ | Backup_lines _ | Restore _ | Replay _ ->
      name_thread st ~pid:sim_pid ~tid:power_tid "power";
      mark st ~tid:power_tid ~ns ev
    | Voltage { volts } -> counter st ~ns ~name:"capacitor V" ~series:"V" volts
    | Reexec { discarded } ->
      (* Per-outage discarded work as its own counter track: the
         re-execution cost trajectory next to the voltage one. *)
      counter st ~ns ~name:"re-executed instrs" ~series:"instructions"
        (float_of_int discarded)
    | Fault_inject _ | Fault_torn _ | Fault_stuck _ ->
      (* Injected faults land on the power track next to the deaths
         they masquerade as. *)
      name_thread st ~pid:sim_pid ~tid:power_tid "power";
      mark st ~tid:power_tid ~ns ev
    | Job_start _ | Job_done _ ->
      let tid = (Domain.self () :> int) in
      name_thread st ~pid:exec_pid ~tid (Printf.sprintf "worker %d" tid);
      let ph = match ev with Job_start _ -> 'B' | _ -> 'E' in
      begin_end st ~pid:exec_pid ~tid ~ns ~ph ev
    | Job_failed _ ->
      let tid = (Domain.self () :> int) in
      name_thread st ~pid:exec_pid ~tid (Printf.sprintf "worker %d" tid);
      mark st ~pid:exec_pid ~tid ~ns ev
    | Job_retry _ | Cache_hit _ | Worker_spawn _ | Worker_dead _ ->
      (* Supervision events are emitted by the parent process only, so
         they share one "supervisor" track on the executor process. *)
      name_thread st ~pid:exec_pid ~tid:sup_tid "supervisor";
      mark st ~pid:exec_pid ~tid:sup_tid ~ns ev
    | Tune_round _ | Tune_frontier _ ->
      (* Search rounds bracket the job spans they schedule, so they live
         on their own executor-process track. *)
      name_thread st ~pid:exec_pid ~tid:tune_tid "tune";
      let ph = match ev with Tune_round _ -> 'B' | _ -> 'E' in
      begin_end st ~pid:exec_pid ~tid:tune_tid ~ns ~ph ev
    | Tune_eval _ | Tune_prune _ ->
      name_thread st ~pid:exec_pid ~tid:tune_tid "tune";
      mark st ~pid:exec_pid ~tid:tune_tid ~ns ev
    | Mark _ -> mark st ~tid:cpu_tid ~ns ev
  end

let create ?filter path =
  let st =
    {
      lock = Mutex.create ();
      oc = open_out path;
      named = Hashtbl.create 16;
      first = true;
      closed = false;
    }
  in
  output_string st.oc "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  record st
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
        \"args\":{\"name\":\"simulation\"}}"
       sim_pid);
  record st
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
        \"args\":{\"name\":\"executor\"}}"
       exec_pid);
  let with_lock f =
    Mutex.lock st.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f
  in
  let base =
    Sink.make
      (fun ~ns ev -> with_lock (fun () -> write st ~ns ev))
      ~flush:(fun () -> with_lock (fun () -> if not st.closed then flush st.oc))
      ~close:(fun () ->
        with_lock (fun () ->
            if not st.closed then begin
              st.closed <- true;
              output_string st.oc "\n]}\n";
              close_out st.oc
            end))
  in
  match filter with
  | None | Some [] -> base
  | Some cats -> Sink.filtered ~cats base
