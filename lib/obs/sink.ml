type t = {
  write : ns:float -> Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null =
  { write = (fun ~ns:_ _ -> ()); flush = (fun () -> ()); close = (fun () -> ()) }

let make ?(flush = fun () -> ()) ?(close = fun () -> ()) write =
  { write; flush; close }

let filtered ~cats sink =
  {
    sink with
    write =
      (fun ~ns ev ->
        if List.memq (Event.category ev) cats then sink.write ~ns ev);
  }

let counting () =
  let n = Atomic.make 0 in
  (make (fun ~ns:_ _ -> Atomic.incr n), fun () -> Atomic.get n)

let tee a b =
  {
    write =
      (fun ~ns ev ->
        a.write ~ns ev;
        b.write ~ns ev);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

(* ------------------------------------------------------------------ *)
(* Global installation.  [enabled] is the single branch every
   instrumentation site pays when tracing is off; it is a plain ref so
   the disabled fast path is one load + one conditional jump.  Install
   happens before worker domains spawn (and the reference write is
   atomic in the OCaml memory model), so cross-domain visibility is not
   a correctness concern — see DESIGN.md on sink domain-safety. *)

let enabled = ref false
let current = ref null

(* Lightweight observers riding alongside the installed sink: the
   checker's oracle pass taps the event stream without displacing (or
   requiring) a real sink.  Sequential use only — see the .mli. *)
let observers : (ns:float -> Event.t -> unit) list ref = ref []

let refresh_enabled () = enabled := !current != null || !observers <> []

let install sink =
  current := sink;
  enabled := true

let clear () =
  current := null;
  refresh_enabled ()

let installed () = !current

let with_tee sink f =
  let prev = !current in
  install (if prev == null then sink else tee prev sink);
  Fun.protect
    ~finally:(fun () ->
      if prev == null then clear () else install prev;
      sink.flush ())
    f

let spy f =
  observers := f :: !observers;
  refresh_enabled ();
  fun () ->
    observers := List.filter (fun g -> g != f) !observers;
    refresh_enabled ()

let on () = !enabled

let emit ~ns ev =
  !current.write ~ns ev;
  match !observers with
  | [] -> ()
  | obs -> List.iter (fun f -> f ~ns ev) obs

let flush () = !current.flush ()

let with_sink sink f =
  install sink;
  Fun.protect
    ~finally:(fun () ->
      clear ();
      sink.flush ();
      sink.close ())
    f
