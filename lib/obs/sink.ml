type t = {
  write : ns:float -> Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null =
  { write = (fun ~ns:_ _ -> ()); flush = (fun () -> ()); close = (fun () -> ()) }

let make ?(flush = fun () -> ()) ?(close = fun () -> ()) write =
  { write; flush; close }

let filtered ~cats sink =
  {
    sink with
    write =
      (fun ~ns ev ->
        if List.memq (Event.category ev) cats then sink.write ~ns ev);
  }

let counting () =
  let n = Atomic.make 0 in
  (make (fun ~ns:_ _ -> Atomic.incr n), fun () -> Atomic.get n)

let tee a b =
  {
    write =
      (fun ~ns ev ->
        a.write ~ns ev;
        b.write ~ns ev);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

(* ------------------------------------------------------------------ *)
(* Global installation.  [enabled] is the single branch every
   instrumentation site pays when tracing is off; it is a plain ref so
   the disabled fast path is one load + one conditional jump.  Install
   happens before worker domains spawn (and the reference write is
   atomic in the OCaml memory model), so cross-domain visibility is not
   a correctness concern — see DESIGN.md on sink domain-safety. *)

let enabled = ref false
let current = ref null

let install sink =
  current := sink;
  enabled := true

let clear () =
  enabled := false;
  current := null

let on () = !enabled
let emit ~ns ev = !current.write ~ns ev
let flush () = !current.flush ()

let with_sink sink f =
  install sink;
  Fun.protect
    ~finally:(fun () ->
      clear ();
      sink.flush ();
      sink.close ())
    f
