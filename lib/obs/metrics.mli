(** Process-wide metrics registry: named counters, gauges and
    histograms with labels; snapshot and diff.

    Updates are lock-free (Atomics), so publishing from worker domains
    is safe; only registration takes a lock.  Same name + labels returns
    the same handle.  {!reset} zeroes values but keeps instruments, so
    handles created at module-initialisation time stay valid.

    Publishing is opt-in: hot-path instrumentation (persist-buffer
    pushes, cache hit/miss) checks {!enabled} first, which is a single
    branch when metrics are off. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val counter : ?labels:(string * string) list -> string -> counter
val gauge : ?labels:(string * string) list -> string -> gauge

val histogram :
  ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are ascending upper bounds; an overflow bucket is added. *)

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Raise the gauge to [v] if larger (high-water marks). *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

type sample =
  | Count of int
  | Value of float
  | Histo of { count : int; sum : float; buckets : (float * int) list }
      (** [buckets] pairs each upper bound (last is [infinity]) with the
          number of observations in that bucket (non-cumulative). *)

type snapshot = (string * sample) list
(** Sorted by canonical name ([name{k=v,...}]). *)

val snapshot : unit -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter and histogram samples subtract; gauges keep the [after]
    value; instruments absent from [before] count from zero. *)

val reset : unit -> unit
(** Zero every instrument (tests); registrations are kept. *)

val render : snapshot -> string
(** Plain-text dump, one instrument per line. *)

val json_schema_version : int
(** Layout version stamped into {!render_json} output. *)

val render_json : snapshot -> string
(** Machine-readable snapshot
    ([{"schema_version":1,"metrics":{name:{type,…}}}]); histogram
    bucket bounds pair [le] (the overflow bound is the string
    ["+inf"]) with the per-bucket count [n].  This is what
    [--metrics-out] writes and what [sweeptrace] reads back. *)

val write_json : string -> snapshot -> unit
(** {!render_json} to a file (plus trailing newline). *)
