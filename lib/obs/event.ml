type category = Region | Buffer | Cache | Power | Exec | Job

let category_name = function
  | Region -> "region"
  | Buffer -> "buffer"
  | Cache -> "cache"
  | Power -> "power"
  | Exec -> "exec"
  | Job -> "job"

let category_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "region" -> Some Region
  | "buffer" -> Some Buffer
  | "cache" -> Some Cache
  | "power" -> Some Power
  | "exec" -> Some Exec
  | "job" -> Some Job
  | _ -> None

let all_categories = [ Region; Buffer; Cache; Power; Exec; Job ]

type phase = Fill | Flush | Drain

let phase_index = function Fill -> 1 | Flush -> 2 | Drain -> 3
let phase_name = function Fill -> "fill" | Flush -> "flush" | Drain -> "drain"

type t =
  | Region_begin of { seq : int; buf : int }
  | Region_end of { seq : int; buf : int }
  | Buf_phase of {
      buf : int;
      seq : int;
      phase : phase;
      start_ns : float;
      end_ns : float;
    }
  | Buf_wait of { buf : int; ns : float }
  | Waw_stall of { seq : int; ns : float }
  | Buffer_search of { scanned : int; hit : bool }
  | Buffer_bypass
  | Cache_miss of { addr : int; write : bool }
  | Cache_writeback of { base : int }
  | Power_down of { volts : float }
  | Death of { volts : float }
  | Reboot of { outage : int }
  | Backup of { ok : bool; joules : float }
  | Backup_lines of { lines : int }
  | Restore of { joules : float }
  | Replay of { stores : int }
  | Voltage of { volts : float }
  | Halt
  | Job_start of { key : string }
  | Job_done of { key : string; elapsed_s : float }
  | Mark of { name : string; cat : category }

let category = function
  | Region_begin _ | Region_end _ -> Region
  | Buf_phase _ | Buf_wait _ | Waw_stall _ | Buffer_search _ | Buffer_bypass ->
    Buffer
  | Cache_miss _ | Cache_writeback _ -> Cache
  | Power_down _ | Death _ | Reboot _ | Backup _ | Backup_lines _ | Restore _
  | Replay _ | Voltage _ ->
    Power
  | Halt -> Exec
  | Job_start _ | Job_done _ -> Job
  | Mark { cat; _ } -> cat

let name = function
  | Region_begin { seq; _ } -> Printf.sprintf "region %d" seq
  | Region_end { seq; _ } -> Printf.sprintf "region %d" seq
  | Buf_phase { phase; seq; _ } ->
    Printf.sprintf "%s r%d" (phase_name phase) seq
  | Buf_wait { buf; _ } -> Printf.sprintf "wait buf%d" buf
  | Waw_stall _ -> "waw stall"
  | Buffer_search { hit = true; _ } -> "buffer hit"
  | Buffer_search { hit = false; _ } -> "buffer search"
  | Buffer_bypass -> "buffer bypass"
  | Cache_miss { write = false; _ } -> "load miss"
  | Cache_miss { write = true; _ } -> "store miss"
  | Cache_writeback _ -> "writeback"
  | Power_down _ -> "power down"
  | Death _ -> "death"
  | Reboot _ -> "reboot"
  | Backup { ok = true; _ } -> "backup"
  | Backup { ok = false; _ } -> "backup failed"
  | Backup_lines _ -> "backup lines"
  | Restore _ -> "restore"
  | Replay _ -> "replay"
  | Voltage _ -> "voltage"
  | Halt -> "halt"
  | Job_start _ -> "job"
  | Job_done _ -> "job"
  | Mark { name; _ } -> name

let json_string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* Event payload as JSON object fields (no surrounding braces), for the
   JSONL and Chrome "args" renderings. *)
let json_args = function
  | Region_begin { seq; buf } | Region_end { seq; buf } ->
    Printf.sprintf "\"seq\":%d,\"buf\":%d" seq buf
  | Buf_phase { buf; seq; phase; start_ns; end_ns } ->
    Printf.sprintf
      "\"buf\":%d,\"seq\":%d,\"phase\":%d,\"start_ns\":%.17g,\"end_ns\":%.17g"
      buf seq (phase_index phase) start_ns end_ns
  | Buf_wait { buf; ns } -> Printf.sprintf "\"buf\":%d,\"ns\":%.17g" buf ns
  | Waw_stall { seq; ns } -> Printf.sprintf "\"seq\":%d,\"ns\":%.17g" seq ns
  | Buffer_search { scanned; hit } ->
    Printf.sprintf "\"scanned\":%d,\"hit\":%b" scanned hit
  | Buffer_bypass -> ""
  | Cache_miss { addr; write } ->
    Printf.sprintf "\"addr\":%d,\"write\":%b" addr write
  | Cache_writeback { base } -> Printf.sprintf "\"base\":%d" base
  | Power_down { volts } | Death { volts } | Voltage { volts } ->
    Printf.sprintf "\"volts\":%.4f" volts
  | Reboot { outage } -> Printf.sprintf "\"outage\":%d" outage
  | Backup { ok; joules } ->
    Printf.sprintf "\"ok\":%b,\"joules\":%.17g" ok joules
  | Backup_lines { lines } -> Printf.sprintf "\"lines\":%d" lines
  | Restore { joules } -> Printf.sprintf "\"joules\":%.17g" joules
  | Replay { stores } -> Printf.sprintf "\"stores\":%d" stores
  | Halt -> ""
  | Job_start { key } -> Printf.sprintf "\"job\":%s" (json_string key)
  | Job_done { key; elapsed_s } ->
    Printf.sprintf "\"job\":%s,\"elapsed_s\":%.6f" (json_string key) elapsed_s
  | Mark _ -> ""
