type category = Region | Buffer | Cache | Power | Exec | Job | Fault | Tune

let category_name = function
  | Region -> "region"
  | Buffer -> "buffer"
  | Cache -> "cache"
  | Power -> "power"
  | Exec -> "exec"
  | Job -> "job"
  | Fault -> "fault"
  | Tune -> "tune"

let category_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "region" -> Some Region
  | "buffer" -> Some Buffer
  | "cache" -> Some Cache
  | "power" -> Some Power
  | "exec" -> Some Exec
  | "job" -> Some Job
  | "fault" -> Some Fault
  | "tune" -> Some Tune
  | _ -> None

let all_categories = [ Region; Buffer; Cache; Power; Exec; Job; Fault; Tune ]

type phase = Fill | Flush | Drain

let phase_index = function Fill -> 1 | Flush -> 2 | Drain -> 3
let phase_name = function Fill -> "fill" | Flush -> "flush" | Drain -> "drain"

type t =
  | Region_begin of { seq : int; buf : int }
  | Region_end of { seq : int; buf : int }
  | Buf_phase of {
      buf : int;
      seq : int;
      phase : phase;
      start_ns : float;
      end_ns : float;
    }
  | Buf_wait of { buf : int; ns : float }
  | Waw_stall of { seq : int; ns : float }
  | Buffer_search of { scanned : int; hit : bool }
  | Buffer_bypass
  | Cache_miss of { addr : int; write : bool }
  | Cache_writeback of { base : int }
  | Power_down of { volts : float }
  | Death of { volts : float }
  | Reboot of { outage : int }
  | Backup of { ok : bool; joules : float }
  | Backup_lines of { lines : int }
  | Restore of { joules : float }
  | Reexec of { discarded : int }
  | Replay of { stores : int }
  | Voltage of { volts : float }
  | Halt
  | Heartbeat of {
      every : int;
      instructions : int;
      reboots : int;
      nvm_writes : int;
    }
  | Dropped of { count : int }
  | Job_start of { key : string }
  | Job_done of { key : string; elapsed_s : float }
  | Job_failed of { key : string; error : string }
  | Job_retry of { key : string; attempt : int }
  | Cache_hit of { key : string }
  | Worker_spawn of { worker : int; pid : int }
  | Worker_dead of { worker : int; pid : int; reason : string }
  | Fault_inject of { trigger : string; detail : string }
  | Fault_torn of { base : int; words : int }
  | Fault_stuck of { bit : int; buf : int; seq : int }
  | Tune_round of { strategy : string; round : int; points : int; benches : int }
  | Tune_eval of { key : string; cached : bool }
  | Tune_prune of { key : string; budget_ns : float }
  | Tune_frontier of { size : int; evals : int }
  | Mark of { name : string; cat : category }

let category = function
  | Region_begin _ | Region_end _ -> Region
  | Buf_phase _ | Buf_wait _ | Waw_stall _ | Buffer_search _ | Buffer_bypass ->
    Buffer
  | Cache_miss _ | Cache_writeback _ -> Cache
  | Power_down _ | Death _ | Reboot _ | Backup _ | Backup_lines _ | Restore _
  | Reexec _ | Replay _ | Voltage _ ->
    Power
  | Halt | Heartbeat _ | Dropped _ -> Exec
  | Job_start _ | Job_done _ | Job_failed _ | Job_retry _ | Cache_hit _
  | Worker_spawn _ | Worker_dead _ ->
    Job
  | Fault_inject _ | Fault_torn _ | Fault_stuck _ -> Fault
  | Tune_round _ | Tune_eval _ | Tune_prune _ | Tune_frontier _ -> Tune
  | Mark { cat; _ } -> cat

let name = function
  | Region_begin { seq; _ } -> Printf.sprintf "region %d" seq
  | Region_end { seq; _ } -> Printf.sprintf "region %d" seq
  | Buf_phase { phase; seq; _ } ->
    Printf.sprintf "%s r%d" (phase_name phase) seq
  | Buf_wait { buf; _ } -> Printf.sprintf "wait buf%d" buf
  | Waw_stall _ -> "waw stall"
  | Buffer_search { hit = true; _ } -> "buffer hit"
  | Buffer_search { hit = false; _ } -> "buffer search"
  | Buffer_bypass -> "buffer bypass"
  | Cache_miss { write = false; _ } -> "load miss"
  | Cache_miss { write = true; _ } -> "store miss"
  | Cache_writeback _ -> "writeback"
  | Power_down _ -> "power down"
  | Death _ -> "death"
  | Reboot _ -> "reboot"
  | Backup { ok = true; _ } -> "backup"
  | Backup { ok = false; _ } -> "backup failed"
  | Backup_lines _ -> "backup lines"
  | Restore _ -> "restore"
  | Reexec _ -> "re-executed work"
  | Replay _ -> "replay"
  | Voltage _ -> "voltage"
  | Halt -> "halt"
  | Heartbeat _ -> "heartbeat"
  | Dropped { count } -> Printf.sprintf "%d events dropped" count
  | Job_start _ -> "job"
  | Job_done _ -> "job"
  | Job_failed _ -> "job failed"
  | Job_retry { attempt; _ } -> Printf.sprintf "job retry %d" attempt
  | Cache_hit _ -> "cache hit"
  | Worker_spawn { worker; _ } -> Printf.sprintf "worker %d spawn" worker
  | Worker_dead { worker; _ } -> Printf.sprintf "worker %d dead" worker
  | Fault_inject { trigger; _ } -> Printf.sprintf "fault %s" trigger
  | Fault_torn { words; _ } -> Printf.sprintf "torn dma (%d words)" words
  | Fault_stuck { bit; _ } -> Printf.sprintf "stuck phase%d bit" bit
  | Tune_round { strategy; round; _ } ->
    Printf.sprintf "%s round %d" strategy round
  | Tune_eval { cached = true; _ } -> "eval (cached)"
  | Tune_eval { cached = false; _ } -> "eval"
  | Tune_prune _ -> "early stop"
  | Tune_frontier { size; _ } -> Printf.sprintf "frontier (%d)" size
  | Mark { name; _ } -> name

(* Stable constructor tag, written as the ["ev"] field of every JSONL
   line so readers can reconstruct the variant (the display [name] is
   ambiguous: Region_begin and Region_end render identically). *)
let tag = function
  | Region_begin _ -> "region_begin"
  | Region_end _ -> "region_end"
  | Buf_phase _ -> "buf_phase"
  | Buf_wait _ -> "buf_wait"
  | Waw_stall _ -> "waw_stall"
  | Buffer_search _ -> "buffer_search"
  | Buffer_bypass -> "buffer_bypass"
  | Cache_miss _ -> "cache_miss"
  | Cache_writeback _ -> "cache_writeback"
  | Power_down _ -> "power_down"
  | Death _ -> "death"
  | Reboot _ -> "reboot"
  | Backup _ -> "backup"
  | Backup_lines _ -> "backup_lines"
  | Restore _ -> "restore"
  | Reexec _ -> "reexec"
  | Replay _ -> "replay"
  | Voltage _ -> "voltage"
  | Halt -> "halt"
  | Heartbeat _ -> "heartbeat"
  | Dropped _ -> "dropped"
  | Job_start _ -> "job_start"
  | Job_done _ -> "job_done"
  | Job_failed _ -> "job_failed"
  | Job_retry _ -> "job_retry"
  | Cache_hit _ -> "cache_hit"
  | Worker_spawn _ -> "worker_spawn"
  | Worker_dead _ -> "worker_dead"
  | Fault_inject _ -> "fault_inject"
  | Fault_torn _ -> "fault_torn"
  | Fault_stuck _ -> "fault_stuck"
  | Tune_round _ -> "tune_round"
  | Tune_eval _ -> "tune_eval"
  | Tune_prune _ -> "tune_prune"
  | Tune_frontier _ -> "tune_frontier"
  | Mark _ -> "mark"

let json_string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* Event payload as JSON object fields (no surrounding braces), for the
   JSONL and Chrome "args" renderings. *)
let json_args = function
  | Region_begin { seq; buf } | Region_end { seq; buf } ->
    Printf.sprintf "\"seq\":%d,\"buf\":%d" seq buf
  | Buf_phase { buf; seq; phase; start_ns; end_ns } ->
    Printf.sprintf
      "\"buf\":%d,\"seq\":%d,\"phase\":%d,\"start_ns\":%.17g,\"end_ns\":%.17g"
      buf seq (phase_index phase) start_ns end_ns
  (* durations are "dur_ns": a payload key of "ns" would collide with
     the JSONL line's own timestamp field *)
  | Buf_wait { buf; ns } ->
    Printf.sprintf "\"buf\":%d,\"dur_ns\":%.17g" buf ns
  | Waw_stall { seq; ns } ->
    Printf.sprintf "\"seq\":%d,\"dur_ns\":%.17g" seq ns
  | Buffer_search { scanned; hit } ->
    Printf.sprintf "\"scanned\":%d,\"hit\":%b" scanned hit
  | Buffer_bypass -> ""
  | Cache_miss { addr; write } ->
    Printf.sprintf "\"addr\":%d,\"write\":%b" addr write
  | Cache_writeback { base } -> Printf.sprintf "\"base\":%d" base
  | Power_down { volts } | Death { volts } | Voltage { volts } ->
    Printf.sprintf "\"volts\":%.4f" volts
  | Reboot { outage } -> Printf.sprintf "\"outage\":%d" outage
  | Backup { ok; joules } ->
    Printf.sprintf "\"ok\":%b,\"joules\":%.17g" ok joules
  | Backup_lines { lines } -> Printf.sprintf "\"lines\":%d" lines
  | Restore { joules } -> Printf.sprintf "\"joules\":%.17g" joules
  | Reexec { discarded } -> Printf.sprintf "\"discarded\":%d" discarded
  | Replay { stores } -> Printf.sprintf "\"stores\":%d" stores
  | Halt -> ""
  | Heartbeat { every; instructions; reboots; nvm_writes } ->
    Printf.sprintf
      "\"every\":%d,\"instructions\":%d,\"reboots\":%d,\"nvm_writes\":%d"
      every instructions reboots nvm_writes
  | Dropped { count } -> Printf.sprintf "\"count\":%d" count
  | Job_start { key } -> Printf.sprintf "\"job\":%s" (json_string key)
  | Job_done { key; elapsed_s } ->
    Printf.sprintf "\"job\":%s,\"elapsed_s\":%.6f" (json_string key) elapsed_s
  | Job_failed { key; error } ->
    Printf.sprintf "\"job\":%s,\"error\":%s" (json_string key)
      (json_string error)
  | Job_retry { key; attempt } ->
    Printf.sprintf "\"job\":%s,\"attempt\":%d" (json_string key) attempt
  | Cache_hit { key } -> Printf.sprintf "\"job\":%s" (json_string key)
  | Worker_spawn { worker; pid } ->
    Printf.sprintf "\"worker\":%d,\"pid\":%d" worker pid
  | Worker_dead { worker; pid; reason } ->
    Printf.sprintf "\"worker\":%d,\"pid\":%d,\"reason\":%s" worker pid
      (json_string reason)
  | Fault_inject { trigger; detail } ->
    Printf.sprintf "\"trigger\":%s,\"detail\":%s" (json_string trigger)
      (json_string detail)
  | Fault_torn { base; words } ->
    Printf.sprintf "\"base\":%d,\"words\":%d" base words
  | Fault_stuck { bit; buf; seq } ->
    Printf.sprintf "\"bit\":%d,\"buf\":%d,\"seq\":%d" bit buf seq
  | Tune_round { strategy; round; points; benches } ->
    Printf.sprintf "\"strategy\":%s,\"round\":%d,\"points\":%d,\"benches\":%d"
      (json_string strategy) round points benches
  | Tune_eval { key; cached } ->
    Printf.sprintf "\"job\":%s,\"cached\":%b" (json_string key) cached
  | Tune_prune { key; budget_ns } ->
    Printf.sprintf "\"job\":%s,\"budget_ns\":%.17g" (json_string key) budget_ns
  | Tune_frontier { size; evals } ->
    Printf.sprintf "\"size\":%d,\"evals\":%d" size evals
  | Mark _ -> ""

(* ------------------------------------------------------------------ *)
(* Round-trip parsing: rebuild an event from its [tag], display [name],
   category name and decoded argument fields.  The inverse of
   [tag]/[name]/[json_args] for every constructor, so a JSONL trace can
   be re-read by Sweep_analyze without an external JSON dependency
   leaking into this library. *)

type arg = Bool of bool | Num of float | Str of string

let num_arg args k =
  match List.assoc_opt k args with Some (Num f) -> Some f | _ -> None

let int_arg args k =
  match num_arg args k with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_arg args k =
  match List.assoc_opt k args with Some (Bool b) -> Some b | _ -> None

let str_arg args k =
  match List.assoc_opt k args with Some (Str s) -> Some s | _ -> None

let phase_of_index = function
  | 1 -> Some Fill
  | 2 -> Some Flush
  | 3 -> Some Drain
  | _ -> None

let of_parts ~tag ~name ~cat ~args =
  let ( let* ) = Option.bind in
  match tag with
  | "region_begin" ->
    let* seq = int_arg args "seq" in
    let* buf = int_arg args "buf" in
    Some (Region_begin { seq; buf })
  | "region_end" ->
    let* seq = int_arg args "seq" in
    let* buf = int_arg args "buf" in
    Some (Region_end { seq; buf })
  | "buf_phase" ->
    let* buf = int_arg args "buf" in
    let* seq = int_arg args "seq" in
    let* phase = Option.bind (int_arg args "phase") phase_of_index in
    let* start_ns = num_arg args "start_ns" in
    let* end_ns = num_arg args "end_ns" in
    Some (Buf_phase { buf; seq; phase; start_ns; end_ns })
  | "buf_wait" ->
    let* buf = int_arg args "buf" in
    let* ns = num_arg args "dur_ns" in
    Some (Buf_wait { buf; ns })
  | "waw_stall" ->
    let* seq = int_arg args "seq" in
    let* ns = num_arg args "dur_ns" in
    Some (Waw_stall { seq; ns })
  | "buffer_search" ->
    let* scanned = int_arg args "scanned" in
    let* hit = bool_arg args "hit" in
    Some (Buffer_search { scanned; hit })
  | "buffer_bypass" -> Some Buffer_bypass
  | "cache_miss" ->
    let* addr = int_arg args "addr" in
    let* write = bool_arg args "write" in
    Some (Cache_miss { addr; write })
  | "cache_writeback" ->
    let* base = int_arg args "base" in
    Some (Cache_writeback { base })
  | "power_down" ->
    let* volts = num_arg args "volts" in
    Some (Power_down { volts })
  | "death" ->
    let* volts = num_arg args "volts" in
    Some (Death { volts })
  | "reboot" ->
    let* outage = int_arg args "outage" in
    Some (Reboot { outage })
  | "backup" ->
    let* ok = bool_arg args "ok" in
    let* joules = num_arg args "joules" in
    Some (Backup { ok; joules })
  | "backup_lines" ->
    let* lines = int_arg args "lines" in
    Some (Backup_lines { lines })
  | "restore" ->
    let* joules = num_arg args "joules" in
    Some (Restore { joules })
  | "reexec" ->
    let* discarded = int_arg args "discarded" in
    Some (Reexec { discarded })
  | "replay" ->
    let* stores = int_arg args "stores" in
    Some (Replay { stores })
  | "voltage" ->
    let* volts = num_arg args "volts" in
    Some (Voltage { volts })
  | "halt" -> Some Halt
  | "heartbeat" ->
    let* every = int_arg args "every" in
    let* instructions = int_arg args "instructions" in
    let* reboots = int_arg args "reboots" in
    let* nvm_writes = int_arg args "nvm_writes" in
    Some (Heartbeat { every; instructions; reboots; nvm_writes })
  | "dropped" ->
    let* count = int_arg args "count" in
    Some (Dropped { count })
  | "job_start" ->
    let* key = str_arg args "job" in
    Some (Job_start { key })
  | "job_done" ->
    let* key = str_arg args "job" in
    let* elapsed_s = num_arg args "elapsed_s" in
    Some (Job_done { key; elapsed_s })
  | "job_failed" ->
    let* key = str_arg args "job" in
    let* error = str_arg args "error" in
    Some (Job_failed { key; error })
  | "job_retry" ->
    let* key = str_arg args "job" in
    let* attempt = int_arg args "attempt" in
    Some (Job_retry { key; attempt })
  | "cache_hit" ->
    let* key = str_arg args "job" in
    Some (Cache_hit { key })
  | "worker_spawn" ->
    let* worker = int_arg args "worker" in
    let* pid = int_arg args "pid" in
    Some (Worker_spawn { worker; pid })
  | "worker_dead" ->
    let* worker = int_arg args "worker" in
    let* pid = int_arg args "pid" in
    let* reason = str_arg args "reason" in
    Some (Worker_dead { worker; pid; reason })
  | "fault_inject" ->
    let* trigger = str_arg args "trigger" in
    let* detail = str_arg args "detail" in
    Some (Fault_inject { trigger; detail })
  | "fault_torn" ->
    let* base = int_arg args "base" in
    let* words = int_arg args "words" in
    Some (Fault_torn { base; words })
  | "fault_stuck" ->
    let* bit = int_arg args "bit" in
    let* buf = int_arg args "buf" in
    let* seq = int_arg args "seq" in
    Some (Fault_stuck { bit; buf; seq })
  | "tune_round" ->
    let* strategy = str_arg args "strategy" in
    let* round = int_arg args "round" in
    let* points = int_arg args "points" in
    let* benches = int_arg args "benches" in
    Some (Tune_round { strategy; round; points; benches })
  | "tune_eval" ->
    let* key = str_arg args "job" in
    let* cached = bool_arg args "cached" in
    Some (Tune_eval { key; cached })
  | "tune_prune" ->
    let* key = str_arg args "job" in
    let* budget_ns = num_arg args "budget_ns" in
    Some (Tune_prune { key; budget_ns })
  | "tune_frontier" ->
    let* size = int_arg args "size" in
    let* evals = int_arg args "evals" in
    Some (Tune_frontier { size; evals })
  | "mark" ->
    let* cat = category_of_name cat in
    Some (Mark { name; cat })
  | _ -> None
