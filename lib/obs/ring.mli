(** Bounded in-memory event sink: the last [capacity] events, oldest
    dropped first.  Mutex-guarded, so safe to share across domains;
    intended for tests and post-mortem inspection of a failing run. *)

type entry = { ns : float; event : Event.t }

type t

val create : capacity:int -> t
val capacity : t -> int

val sink : t -> Sink.t
(** The {!Sink.t} view writing into this ring. *)

val total : t -> int
(** Events ever written (including dropped ones). *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int

val to_list : t -> entry list
(** Retained events, oldest first. *)

val pinned : t -> entry list
(** Fault-category events that were evicted from the window but
    preserved by pinning, oldest first. *)

val drain_to : t -> Sink.t -> unit
(** Replay the retained window into [sink], oldest first, preceded by an
    {!Event.Dropped} event when the ring wrapped — downstream consumers
    (and [sweeptrace]) must see that the trace is truncated.  Fault
    events are pinned: even when the window wraps past them they are
    re-emitted (right after the [Dropped] marker, excluded from its
    count) rather than silently lost. *)

val clear : t -> unit
