(** Chrome trace-event / Perfetto JSON sink.

    Load the written file in [chrome://tracing] or {{:https://ui.perfetto.dev}ui.perfetto.dev}.
    Renders the CPU (region spans, WAW/structural stalls, miss markers),
    a power track (off spans, backup/restore markers), one track per
    persist buffer (fill/flush/drain phase spans) and the capacitor
    voltage as a counter, all on one timeline in simulated nanoseconds.
    Executor job spans land in a second process grouped by worker
    domain. *)

val create : ?filter:Event.category list -> string -> Sink.t
(** [create ?filter path] truncates/creates [path].  [filter] keeps
    only the given categories ([None]/[[]] = everything).  The file is
    valid JSON only after [close]. *)
