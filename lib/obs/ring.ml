type entry = { ns : float; event : Event.t }

type t = {
  lock : Mutex.t;
  slots : entry option array;
  mutable next : int;   (* total events ever written *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create";
  { lock = Mutex.create (); slots = Array.make capacity None; next = 0 }

let capacity t = Array.length t.slots

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write t ~ns event =
  with_lock t (fun () ->
      t.slots.(t.next mod Array.length t.slots) <- Some { ns; event };
      t.next <- t.next + 1)

let sink t = Sink.make (fun ~ns ev -> write t ~ns ev)

let total t = with_lock t (fun () -> t.next)

let length t =
  with_lock t (fun () -> min t.next (Array.length t.slots))

let dropped t =
  with_lock t (fun () -> max 0 (t.next - Array.length t.slots))

(* Oldest first among the retained window. *)
let to_list t =
  with_lock t (fun () ->
      let cap = Array.length t.slots in
      let n = min t.next cap in
      let first = t.next - n in
      List.init n (fun i ->
          match t.slots.((first + i) mod cap) with
          | Some e -> e
          | None -> assert false))

(* Replay the retained window into another sink, oldest first.  A wrap
   is made explicit: the stream opens with a [Dropped] event so a
   truncated trace can never masquerade as a complete one. *)
let drain_to t sink =
  let entries = to_list t in
  let d = dropped t in
  if d > 0 then begin
    let first_ns = match entries with e :: _ -> e.ns | [] -> 0.0 in
    sink.Sink.write ~ns:first_ns (Event.Dropped { count = d })
  end;
  List.iter (fun e -> sink.Sink.write ~ns:e.ns e.event) entries

let clear t =
  with_lock t (fun () ->
      Array.fill t.slots 0 (Array.length t.slots) None;
      t.next <- 0)
