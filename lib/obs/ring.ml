type entry = { ns : float; event : Event.t }

type t = {
  lock : Mutex.t;
  slots : entry option array;
  mutable next : int;   (* total events ever written *)
  (* Fault-category events, with the global index each was written at,
     newest first.  They are re-surfaced by [drain_to] even after the
     window wraps past them: a capped trace must never lose the very
     fault injection it exists to explain. *)
  mutable pinned : (int * entry) list;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create";
  {
    lock = Mutex.create ();
    slots = Array.make capacity None;
    next = 0;
    pinned = [];
  }

let capacity t = Array.length t.slots

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write t ~ns event =
  with_lock t (fun () ->
      let e = { ns; event } in
      t.slots.(t.next mod Array.length t.slots) <- Some e;
      if Event.category event = Event.Fault then
        t.pinned <- (t.next, e) :: t.pinned;
      t.next <- t.next + 1)

let sink t = Sink.make (fun ~ns ev -> write t ~ns ev)

let total t = with_lock t (fun () -> t.next)

let length t =
  with_lock t (fun () -> min t.next (Array.length t.slots))

let dropped t =
  with_lock t (fun () -> max 0 (t.next - Array.length t.slots))

(* Oldest first among the retained window. *)
let to_list t =
  with_lock t (fun () ->
      let cap = Array.length t.slots in
      let n = min t.next cap in
      let first = t.next - n in
      List.init n (fun i ->
          match t.slots.((first + i) mod cap) with
          | Some e -> e
          | None -> assert false))

(* Entries evicted from the window but preserved by pinning (fault
   events), oldest first. *)
let pinned t =
  with_lock t (fun () ->
      let first = max 0 (t.next - Array.length t.slots) in
      List.rev_map snd (List.filter (fun (i, _) -> i < first) t.pinned))

(* Replay the retained window into another sink, oldest first.  A wrap
   is made explicit: the stream opens with a [Dropped] event so a
   truncated trace can never masquerade as a complete one.  Pinned
   fault events that wrapped out of the window are re-emitted right
   after the marker (and excluded from its count): a [Dropped] marker
   must never swallow the fault injection itself. *)
let drain_to t sink =
  let entries, evicted_pinned, lost =
    with_lock t (fun () ->
        let cap = Array.length t.slots in
        let n = min t.next cap in
        let first = t.next - n in
        let entries =
          List.init n (fun i ->
              match t.slots.((first + i) mod cap) with
              | Some e -> e
              | None -> assert false)
        in
        let evicted =
          List.rev_map snd (List.filter (fun (i, _) -> i < first) t.pinned)
        in
        (entries, evicted, first - List.length evicted))
  in
  if lost > 0 then begin
    let first_ns =
      match (evicted_pinned, entries) with
      | e :: _, _ | [], e :: _ -> e.ns
      | [], [] -> 0.0
    in
    sink.Sink.write ~ns:first_ns (Event.Dropped { count = lost })
  end;
  List.iter (fun e -> sink.Sink.write ~ns:e.ns e.event) evicted_pinned;
  List.iter (fun e -> sink.Sink.write ~ns:e.ns e.event) entries

let clear t =
  with_lock t (fun () ->
      Array.fill t.slots 0 (Array.length t.slots) None;
      t.next <- 0;
      t.pinned <- [])
