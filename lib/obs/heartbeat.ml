(* Amortized liveness beats for the hot cycle loop.

   The driver pays two machine operations per instruction — a
   compare and a subtract on [countdown] — and everything else
   happens on the cold [fire] path once per [every] instructions.
   [countdown]/[beats]/... are plain int fields so the hot path
   allocates nothing; the last observed simulated time lives in a
   separate all-float record ([floats]) because mutating a float
   field of a mixed record boxes on non-flambda builds. *)

type floats = { mutable sim_ns : float }

type t = {
  every : int;  (* instructions per beat; <= 0 means disabled *)
  mutable countdown : int;
  mutable beats : int;
  mutable instructions : int;
  mutable reboots : int;
  mutable nvm_writes : int;
  f : floats;
  observer : (t -> unit) option;
}

let default_every = 1_000_000

let create ?observer ?(every = default_every) () =
  {
    every;
    countdown = (if every > 0 then every else max_int);
    beats = 0;
    instructions = 0;
    reboots = 0;
    nvm_writes = 0;
    f = { sim_ns = 0.0 };
    observer;
  }

let disabled () = create ~every:0 ()
let enabled t = t.every > 0
let beats t = t.beats
let sim_ns t = t.f.sim_ns

(* Cold path: re-arm the countdown, record the machine's progress,
   emit (only when a sink is installed) and notify the observer.
   Called by the driver when [countdown] reaches zero. *)
let fire t ~sim_ns ~instructions ~reboots ~nvm_writes =
  t.countdown <- (if t.every > 0 then t.every else max_int);
  if t.every > 0 then begin
    t.beats <- t.beats + 1;
    t.instructions <- instructions;
    t.reboots <- reboots;
    t.nvm_writes <- nvm_writes;
    t.f.sim_ns <- sim_ns;
    if Sink.on () then
      Sink.emit ~ns:sim_ns
        (Event.Heartbeat { every = t.every; instructions; reboots; nvm_writes });
    match t.observer with None -> () | Some f -> f t
  end
