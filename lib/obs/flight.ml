(* Crash flight recorder: a bounded ring armed alongside whatever sink
   is installed; on a captured job failure, [dump] writes a post-mortem
   JSONL artifact with the ring's tail (Dropped marker + pinned fault
   events preserved by [Ring.drain_to]), a metrics snapshot and the
   failing job's key.  Read back by [sweeptrace postmortem]. *)

type t = {
  ring : Ring.t;
  dir : string;
  lock : Mutex.t;  (* dumps may race from worker domains *)
}

let schema_version = 1
let default_capacity = 4096

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let arm ?(capacity = default_capacity) ~dir () =
  mkdir_p dir;
  { ring = Ring.create ~capacity; dir; lock = Mutex.create () }

let sink t = Ring.sink t.ring

(* File name: a readable slug of the key plus a short hash so distinct
   keys that sanitise identically cannot collide. *)
let slug key =
  let b = Bytes.of_string key in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '-' || c = '_' || c = '.'
      in
      if not ok then Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  let s = if String.length s > 80 then String.sub s 0 80 else s in
  Printf.sprintf "%s-%06x" s (Hashtbl.hash key land 0xffffff)

let path_for t ~key = Filename.concat t.dir ("postmortem-" ^ slug key ^ ".jsonl")

let dump t ~key ~error ~backtrace =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let path = path_for t ~key in
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      (* header first, so even a truncated artifact names its job *)
      Printf.fprintf oc
        "{\"schema_version\":%d,\"kind\":\"postmortem\",\"job\":%s,\"error\":%s,\"backtrace\":%s,\"events\":%d,\"dropped\":%d}\n"
        schema_version
        (Event.json_string key)
        (Event.json_string error)
        (Event.json_string backtrace)
        (Ring.length t.ring) (Ring.dropped t.ring);
      let write_line ~ns ev =
        output_string oc (Jsonl_sink.render_line ~ns ev);
        output_char oc '\n'
      in
      Ring.drain_to t.ring (Sink.make write_line);
      Printf.fprintf oc "%s\n" (Metrics.render_json (Metrics.snapshot ()));
      close_out oc;
      Sys.rename tmp path;
      path)
