(** Amortized liveness beats for the hot cycle loop.

    The simulator driver decrements {!field-countdown} once per
    instruction and calls {!fire} when it reaches zero — two machine
    operations on the hot path, everything else amortized over
    [every] instructions.  A beat emits {!Event.Heartbeat} through
    the installed sink (if any) and invokes the per-run [observer]
    (the executor's live-status aggregator).  The hot path allocates
    nothing: all beat state is int fields plus a separate all-float
    record for the simulated timestamp. *)

type floats = { mutable sim_ns : float }

(* Not [private]: the driver's hot loop must mutate [countdown]
   directly (a closure or setter would cost a call per instruction). *)
type t = {
  every : int;  (** instructions per beat; [<= 0] means disabled *)
  mutable countdown : int;
      (** decremented by the driver per instruction; fire at [<= 0] *)
  mutable beats : int;
  mutable instructions : int;  (** cumulative, at the last beat *)
  mutable reboots : int;
  mutable nvm_writes : int;
  f : floats;
  observer : (t -> unit) option;
}

val default_every : int
(** 1,000,000 instructions — tens of beats per second at the
    simulator's measured 20–40 M instr/s, and far too sparse to show
    up in the allocation or throughput gates. *)

val create : ?observer:(t -> unit) -> ?every:int -> unit -> t
(** Fresh beat state.  [every <= 0] disables firing entirely (the
    countdown is armed to [max_int]).  Heartbeat values are not
    shared: give every concurrent run its own. *)

val disabled : unit -> t
(** [create ~every:0 ()] — the driver's default when no heartbeat is
    requested; the per-instruction decrement still runs but never
    fires. *)

val enabled : t -> bool
val beats : t -> int
val sim_ns : t -> float
(** Simulated time at the last beat (0.0 before the first). *)

val fire :
  t ->
  sim_ns:float ->
  instructions:int ->
  reboots:int ->
  nvm_writes:int ->
  unit
(** Cold path, called by the driver when [countdown <= 0]: re-arms
    the countdown, records the progress counters, emits
    {!Event.Heartbeat} when a sink is installed, and runs the
    observer.  A no-op (beyond re-arming) when disabled. *)
