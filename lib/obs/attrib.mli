(** Per-PC attribution counters: packed parallel arrays pinning every
    unit of simulated cost (time, energy, NVM wear, cache misses,
    stalls, re-executed work) to the program counter that incurred it.

    The record is public because the simulator's cycle loop open-codes
    the per-instruction update against these fields — a cross-module
    call per instruction would defeat inlining under the dev profile's
    [-opaque] and box the float operands.  Everything outside the
    driver should treat the arrays as read-only and go through the
    cold-path functions below.

    Arming is branchless: a disabled [t] carries length-1 arrays and
    [mask = 0], an armed one full-length arrays and [mask = -1].  The
    hot loop always indexes with [pc land mask], so disabling costs a
    few dead stores into slot 0 instead of a branch.

    Re-execution is measured with an epoch/stamp/delta scheme (see the
    implementation header and DESIGN.md §9): commits bump [epoch];
    a crash harvests the uncommitted per-PC instruction deltas into
    [reexec].  For designs with asynchronous persistence this is a
    lower bound on re-executed work. *)

type t = {
  len : int;  (** program length the armed counters cover *)
  mask : int;  (** -1 when armed, 0 when disabled *)
  count : int array;  (** instructions executed at this PC *)
  reexec : int array;  (** executed-then-discarded instructions *)
  nvm_writes : int array;  (** NVM line-writes during execution here *)
  ckpt_nvm_writes : int array;
      (** NVM line-writes from cold machinery (backup / restore /
          final drain) charged to the PC where it fired *)
  cache_misses : int array;
  crashes : int array;  (** power failures that struck at this PC *)
  ns : float array;  (** simulated time spent executing here *)
  stall_ns : float array;  (** persist-buffer wait + WAW stalls *)
  joules : float array;  (** consume energy (execution + final drain) *)
  backup_joules : float array;
  restore_joules : float array;
  ckpt_ns : float array;  (** backup/restore/drain time charged here *)
  stamp : int array;  (** internal: epoch of last execution at PC *)
  delta : int array;  (** internal: instrs at PC since [stamp] epoch *)
  mutable epoch : int;  (** internal: bumped on every commit *)
  mutable total_reexec : int;  (** sum of [reexec], kept incrementally *)
}

val create : len:int -> t
(** Armed instance covering a program of [len] instructions. *)

val disabled : unit -> t
(** Fresh disabled sink.  One per run — disabled instances still absorb
    hot-path stores, so sharing one across domains would race. *)

val armed : t -> bool
val length : t -> int

val note_commit : t -> unit
(** Cold path: work up to here is durably banked (a region boundary
    retired, or a just-in-time backup captured state).  Bumps the
    epoch so in-flight deltas are no longer crash-discardable. *)

val note_crash : t -> pc:int -> int
(** Cold path: a power failure struck while executing at [pc].
    Harvests every un-committed per-PC delta into [reexec], records the
    crash strike, advances the epoch, and returns the total number of
    instructions discarded by this outage. *)

val note_cold :
  t ->
  pc:int ->
  ?nvm_writes:int ->
  ?cache_misses:int ->
  ?ns:float ->
  ?joules:float ->
  ?backup_joules:float ->
  ?restore_joules:float ->
  unit ->
  unit
(** Cold path: charge checkpoint-machinery costs (backup, restore,
    final persist-buffer drain) to the PC where they fired.  [ns] lands
    in [ckpt_ns]; [nvm_writes] in [ckpt_nvm_writes]; [joules] in the
    consume-energy array. *)

val total_reexec : t -> int

(** Whole-run sums over the per-PC arrays (cold; used for
    reconciliation against [Mstats] and run metrics). *)
type totals = {
  t_instructions : int;
  t_reexec : int;
  t_nvm_writes : int;
  t_ckpt_nvm_writes : int;
  t_cache_misses : int;
  t_crashes : int;
  t_ns : float;
  t_stall_ns : float;
  t_joules : float;
  t_backup_joules : float;
  t_restore_joules : float;
  t_ckpt_ns : float;
}

val totals : t -> totals
