(** Typed trace events for the whole simulation stack.

    Every event carries its payload inline; the timestamp (simulated
    nanoseconds for machine/driver events, wall-clock nanoseconds for
    executor job events) travels separately through {!Sink.emit} so hot
    paths can reuse the [now_ns] value they already hold. *)

type category = Region | Buffer | Cache | Power | Exec | Job | Fault | Tune

val category_name : category -> string
val category_of_name : string -> category option
val all_categories : category list

type phase =
  | Fill   (** phase 1: the region executes, write-backs quarantined *)
  | Flush  (** phase 2 (s-phase1): region-end dirty-line flush *)
  | Drain  (** phase 3 (s-phase2): DMA drain of the sealed buffer to NVM *)

val phase_index : phase -> int
val phase_name : phase -> string

type t =
  | Region_begin of { seq : int; buf : int }
  | Region_end of { seq : int; buf : int }
  | Buf_phase of {
      buf : int;
      seq : int;
      phase : phase;
      start_ns : float;
      end_ns : float;
    }  (** A completed/scheduled persistence span on one persist buffer. *)
  | Buf_wait of { buf : int; ns : float }
      (** Structural-hazard stall at a region boundary (§3.3). *)
  | Waw_stall of { seq : int; ns : float }  (** §4.3 write-after-write. *)
  | Buffer_search of { scanned : int; hit : bool }
  | Buffer_bypass  (** Empty-bit let a miss skip the buffer search. *)
  | Cache_miss of { addr : int; write : bool }
  | Cache_writeback of { base : int }
  | Power_down of { volts : float }  (** JIT stop or post-backup stop. *)
  | Death of { volts : float }       (** Hard death at Vmin. *)
  | Reboot of { outage : int }
  | Backup of { ok : bool; joules : float }
  | Backup_lines of { lines : int }  (** Design detail: lines checkpointed. *)
  | Restore of { joules : float }
  | Reexec of { discarded : int }
      (** Instructions executed since the last durable commit and
          discarded by this outage — the work the reboot re-executes
          (counter track; emitted on every crash path). *)
  | Replay of { stores : int }       (** ReplayCache store replay. *)
  | Voltage of { volts : float }     (** Capacitor sample (counter track). *)
  | Halt
  | Heartbeat of {
      every : int;
      instructions : int;
      reboots : int;
      nvm_writes : int;
    }
      (** Periodic liveness beat from the hot cycle loop, fired every
          [every] instructions.  Carries cumulative instructions,
          reboots and NVM writes; simulated time rides as the line's
          own timestamp. *)
  | Dropped of { count : int }
      (** [count] earlier events were lost (bounded sink overwrote on
          wrap) — a trace containing this is truncated, not complete. *)
  | Job_start of { key : string }
  | Job_done of { key : string; elapsed_s : float }
  | Job_failed of { key : string; error : string }
      (** A worker caught an exception; the job produced no summary. *)
  | Job_retry of { key : string; attempt : int }
      (** Supervised execution: the worker running the job died (crash
          or heartbeat timeout) and the job was requeued; [attempt] is
          the attempt that just failed (1-based). *)
  | Cache_hit of { key : string }
      (** The persistent result cache served the job's summary; nothing
          was simulated. *)
  | Worker_spawn of { worker : int; pid : int }
      (** Supervisor (re)spawned worker process [pid] into slot
          [worker]. *)
  | Worker_dead of { worker : int; pid : int; reason : string }
      (** Worker process [pid] in slot [worker] was reaped; [reason] is
          ["exit N"], ["signal N"] or ["heartbeat timeout (...)"] . *)
  | Fault_inject of { trigger : string; detail : string }
      (** An injected (adversarial) power failure, as opposed to a
          voltage-driven {!Death}.  [trigger] is ["instr"], ["event"] or
          ["nested"]; [detail] locates the crash point. *)
  | Fault_torn of { base : int; words : int }
      (** Torn persist-buffer DMA: only the first [words] words of the
          line at [base] reached NVM before the crash. *)
  | Fault_stuck of { bit : int; buf : int; seq : int }
      (** A stuck-at-1 [phaseNComplete] bit ([bit] is 1 or 2) observed
          on buffer [buf] (region [seq]) at crash time. *)
  | Tune_round of { strategy : string; round : int; points : int; benches : int }
      (** A design-space search round: [points] candidates evaluated on
          [benches] workloads (wall-clock timestamps, like job events). *)
  | Tune_eval of { key : string; cached : bool }
      (** One (point, bench) cell of the search; [cached] when the
          journal or results store already held it. *)
  | Tune_prune of { key : string; budget_ns : float }
      (** An early-stopped cell: its simulation was cut at [budget_ns]
          simulated nanoseconds because it was already dominated. *)
  | Tune_frontier of { size : int; evals : int }
      (** Pareto frontier update after a round: [size] non-dominated
          points after [evals] total evaluations. *)
  | Mark of { name : string; cat : category }
      (** Free-form instant marker for one-off annotations. *)

val category : t -> category
val name : t -> string

val tag : t -> string
(** Stable lower-snake constructor tag ([region_begin], [buf_phase],
    …) — the ["ev"] field of every JSONL line.  Unlike {!name} it is
    unambiguous, so {!of_parts} can reconstruct the variant. *)

val json_string : string -> string
(** JSON string literal (with quotes) of [s]. *)

val json_args : t -> string
(** The payload as JSON object fields without surrounding braces
    (possibly empty). *)

(** {2 Round-trip parsing}

    Inverse of {!tag}/{!name}/{!json_args}: rebuild the event from a
    decoded JSONL line.  Lives here (rather than in [Sweep_analyze]) so
    the constructor list and its parser can never drift apart. *)

type arg = Bool of bool | Num of float | Str of string
(** Decoded JSON scalar — what a trace reader hands back for each
    payload field. *)

val of_parts :
  tag:string -> name:string -> cat:string -> args:(string * arg) list ->
  t option
(** [of_parts ~tag ~name ~cat ~args] is the event whose JSONL rendering
    carries those parts, or [None] for an unknown tag / missing or
    ill-typed fields.  [name] and [cat] matter only for [mark] events;
    numeric fields accept any integral [Num]. *)
