(** Raw event log: one JSON object per event, one per line
    ([{"ns":…,"name":…,"cat":…,…payload}]).  Whole-line atomic across
    domains.  For greppable logs; use {!Chrome_trace} for timelines. *)

val create : string -> Sink.t
(** [create path] truncates/creates [path]; events stream through a
    buffered channel, flushed on [flush]/[close]. *)
