(** Raw event log: one JSON object per event, one per line
    ([{"ns":…,"ev":…,"name":…,"cat":…,…payload}]).  Whole-line atomic
    across domains.  For greppable logs and for
    [Sweep_analyze.Trace_reader]; use {!Chrome_trace} for timelines. *)

val render_line : ns:float -> Event.t -> string
(** The exact line {!create}'s sink writes (no trailing newline) —
    exposed so the round-trip tests and readers share one layout. *)

val create : string -> Sink.t
(** [create path] truncates/creates [path]; events stream through a
    buffered channel, flushed on [flush]/[close].  [Job_failed] and
    fault-category lines are additionally flushed and fsynced as they
    are written, so the most interesting tail of a trace survives a
    process that dies without closing the sink. *)
