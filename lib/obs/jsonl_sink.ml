(* One JSON object per event, one event per line.  All writes go through
   a mutex and a single buffered channel, so lines from different
   domains never interleave. *)

let create path =
  let lock = Mutex.create () in
  let oc = open_out path in
  let closed = ref false in
  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let write ~ns ev =
    with_lock (fun () ->
        if not !closed then begin
          let args = Event.json_args ev in
          Printf.fprintf oc "{\"ns\":%.17g,\"name\":%s,\"cat\":\"%s\"%s%s}\n"
            ns
            (Event.json_string (Event.name ev))
            (Event.category_name (Event.category ev))
            (if args = "" then "" else ",")
            args
        end)
  in
  Sink.make write
    ~flush:(fun () -> with_lock (fun () -> if not !closed then flush oc))
    ~close:(fun () ->
      with_lock (fun () ->
          if not !closed then begin
            closed := true;
            close_out oc
          end))
