(* One JSON object per event, one event per line.  All writes go through
   a mutex and a single buffered channel, so lines from different
   domains never interleave. *)

(* The line layout readers depend on (see Sweep_analyze.Trace_reader):
   ns, then the stable constructor tag, then the display name and
   category, then the payload fields. *)
let render_line ~ns ev =
  let args = Event.json_args ev in
  Printf.sprintf "{\"ns\":%.17g,\"ev\":\"%s\",\"name\":%s,\"cat\":\"%s\"%s%s}"
    ns (Event.tag ev)
    (Event.json_string (Event.name ev))
    (Event.category_name (Event.category ev))
    (if args = "" then "" else ",")
    args

let create path =
  let lock = Mutex.create () in
  let oc = open_out path in
  let closed = ref false in
  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let write ~ns ev =
    with_lock (fun () ->
        if not !closed then begin
          output_string oc (render_line ~ns ev);
          output_char oc '\n';
          (* Failure, fault and completion lines are exactly the tail a
             post-mortem needs, and exactly what buffered IO loses when
             the process dies — push them through to the OS immediately.
             Job_done is included so a supervisor that respawns this
             process never re-reads a torn final record as valid. *)
          let crash_critical =
            match ev with
            | Event.Job_failed _ | Event.Job_done _ -> true
            | ev -> Event.category ev = Event.Fault
          in
          if crash_critical then begin
            flush oc;
            try Unix.fsync (Unix.descr_of_out_channel oc)
            with Unix.Unix_error _ -> ()
          end
        end)
  in
  Sink.make write
    ~flush:(fun () -> with_lock (fun () -> if not !closed then flush oc))
    ~close:(fun () ->
      with_lock (fun () ->
          if not !closed then begin
            closed := true;
            close_out oc
          end))
