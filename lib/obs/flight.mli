(** Crash flight recorder.

    A bounded event {!Ring} teed alongside the installed sink (via
    {!Sink.with_tee}); when the executor captures a job failure it
    calls {!dump}, which writes a self-contained post-mortem JSONL
    artifact: a header line naming the job, error and backtrace, then
    the ring's retained tail (the [Dropped] truncation marker and
    pinned fault-category events are preserved), then a
    {!Metrics.render_json} snapshot as the final line.  Readable by
    [sweeptrace postmortem] through [Sweep_analyze.Flight_file]. *)

type t

val schema_version : int
val default_capacity : int
(** 4096 events retained. *)

val arm : ?capacity:int -> dir:string -> unit -> t
(** Create the artifact directory (and parents) and the ring.  Tee
    {!sink} into the event stream yourself — the executor does this
    with {!Sink.with_tee} around a whole run. *)

val sink : t -> Sink.t
(** The ring's sink view. *)

val path_for : t -> key:string -> string
(** Artifact path a {!dump} for [key] will write: a sanitised slug of
    the job key plus a short hash (distinct keys never collide). *)

val dump : t -> key:string -> error:string -> backtrace:string -> string
(** Write the artifact for one captured failure (atomic tmp+rename;
    serialised across domains) and return its path.  The ring is not
    cleared: a later failure's artifact also carries the earlier tail
    — forensically useful, and dumps stay independent. *)
