(** Pluggable event sinks.

    A sink is three closures; concrete sinks ({!Ring}, {!Jsonl_sink},
    {!Chrome_trace}) must be internally synchronised because events may
    arrive concurrently from worker domains.  The default sink is
    {!null}: with tracing disabled, every instrumentation site reduces
    to a single [if Sink.on ()] branch — verified by the
    [obs:emit-disabled] micro-benchmark. *)

type t = {
  write : ns:float -> Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

val null : t

val make :
  ?flush:(unit -> unit) -> ?close:(unit -> unit) ->
  (ns:float -> Event.t -> unit) -> t

val filtered : cats:Event.category list -> t -> t
(** Keep only events whose category is in [cats]. *)

val counting : unit -> t * (unit -> int)
(** A sink that atomically counts events (the [-j 1] = [-j 4]
    determinism check), and its reader. *)

val tee : t -> t -> t
(** Duplicate every event (and flush/close) into both sinks. *)

(** {2 The process-wide current sink} *)

val install : t -> unit
(** Route {!emit} to [sink] and flip {!on} to [true].  Install before
    spawning worker domains. *)

val clear : unit -> unit
(** Back to the no-op sink ({!on} becomes [false] unless spies remain).
    Does not flush or close the previous sink — callers own that. *)

val installed : unit -> t
(** The currently installed sink ({!null} when none). *)

val with_tee : t -> (unit -> 'a) -> 'a
(** [with_tee sink f] splices [sink] alongside whatever sink is
    currently installed (or installs it alone when none is), runs [f],
    then restores the previous state and flushes [sink] — but does not
    close it, so the caller can still drain it (the flight recorder's
    ring).  Like {!install}, call before spawning worker domains. *)

val spy : (ns:float -> Event.t -> unit) -> unit -> unit
(** [spy f] attaches [f] as an observer of every emitted event — in
    addition to (and independent of) the installed sink — and returns a
    detach closure.  While any observer is attached {!on} reports
    [true], so instrumentation sites fire even with no sink installed.
    Unlike sinks, observers are NOT synchronised: attach, observe and
    detach only from sequential (single-domain) runs. *)

val on : unit -> bool
(** The guard every instrumentation site checks before building an
    event: [if Sink.on () then Sink.emit ~ns (Event....)]. *)

val emit : ns:float -> Event.t -> unit
val flush : unit -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** [with_sink sink f] installs, runs [f], then clears and
    flushes/closes [sink] (also on exception). *)
