(* Process-wide metrics registry: named counters / gauges / histograms
   with optional labels.  All instruments are lock-free on the update
   path (Atomics; CAS loops for float accumulation) so publishing from
   worker domains is safe; only registration takes the lock.

   [reset] zeroes values but never removes instruments — handles created
   at module-initialisation time (persist-buffer, cache) stay valid
   across test runs. *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  bounds : float array;           (* ascending upper bounds *)
  counts : int Atomic.t array;    (* one per bound, plus overflow at the end *)
  sum : float Atomic.t;
  hcount : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

let lock = Mutex.create ()
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let canonical name labels =
  match labels with
  | [] -> name
  | labels ->
    let labels = List.sort compare labels in
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let counter ?(labels = []) name =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let key = canonical name labels in
      match Hashtbl.find_opt registry key with
      | Some (C c) -> c
      | Some _ -> invalid_arg ("Metrics: " ^ key ^ " is not a counter")
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.replace registry key (C c);
        c)

let gauge ?(labels = []) name =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let key = canonical name labels in
      match Hashtbl.find_opt registry key with
      | Some (G g) -> g
      | Some _ -> invalid_arg ("Metrics: " ^ key ^ " is not a gauge")
      | None ->
        let g = Atomic.make 0.0 in
        Hashtbl.replace registry key (G g);
        g)

let default_buckets =
  [| 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 30.0; 60.0 |]

let histogram ?(labels = []) ?(buckets = default_buckets) name =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let key = canonical name labels in
      match Hashtbl.find_opt registry key with
      | Some (H h) -> h
      | Some _ -> invalid_arg ("Metrics: " ^ key ^ " is not a histogram")
      | None ->
        let h =
          {
            bounds = Array.copy buckets;
            counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            sum = Atomic.make 0.0;
            hcount = Atomic.make 0;
          }
        in
        Hashtbl.replace registry key (H h);
        h)

let inc c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let rec atomic_float_add a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_float_add a x

let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

let observe h x =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || x <= h.bounds.(i) then i else slot (i + 1) in
  Atomic.incr h.counts.(slot 0);
  Atomic.incr h.hcount;
  atomic_float_add h.sum x

(* ------------------------------------------------------------------ *)

type sample =
  | Count of int
  | Value of float
  | Histo of { count : int; sum : float; buckets : (float * int) list }

type snapshot = (string * sample) list

let sample_of = function
  | C c -> Count (Atomic.get c)
  | G g -> Value (Atomic.get g)
  | H h ->
    Histo
      {
        count = Atomic.get h.hcount;
        sum = Atomic.get h.sum;
        buckets =
          List.init (Array.length h.bounds) (fun i ->
              (h.bounds.(i), Atomic.get h.counts.(i)))
          @ [ (infinity, Atomic.get h.counts.(Array.length h.bounds)) ];
      }

let snapshot () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      Hashtbl.fold (fun k v acc -> (k, sample_of v) :: acc) registry []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let diff ~before ~after =
  let before_tbl = Hashtbl.create (List.length before) in
  List.iter (fun (k, s) -> Hashtbl.replace before_tbl k s) before;
  List.map
    (fun (k, s) ->
      match (s, Hashtbl.find_opt before_tbl k) with
      | Count a, Some (Count b) -> (k, Count (a - b))
      | Histo a, Some (Histo b) ->
        ( k,
          Histo
            {
              count = a.count - b.count;
              sum = a.sum -. b.sum;
              buckets =
                List.map2
                  (fun (bound, ca) (_, cb) -> (bound, ca - cb))
                  a.buckets b.buckets;
            } )
      | s, _ -> (k, s))
    after

let reset () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      Hashtbl.iter
        (fun _ v ->
          match v with
          | C c -> Atomic.set c 0
          | G g -> Atomic.set g 0.0
          | H h ->
            Array.iter (fun c -> Atomic.set c 0) h.counts;
            Atomic.set h.sum 0.0;
            Atomic.set h.hcount 0)
        registry)

(* Machine-readable snapshot export (--metrics-out): one object keyed by
   canonical series name.  The histogram overflow bucket's bound is the
   string "+inf" (JSON has no infinity literal). *)
let json_schema_version = 1

let render_json snap =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema_version\":%d,\"metrics\":{" json_schema_version);
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Event.json_string name);
      Buffer.add_char b ':';
      match s with
      | Count n ->
        Buffer.add_string b
          (Printf.sprintf "{\"type\":\"counter\",\"value\":%d}" n)
      | Value v ->
        Buffer.add_string b
          (Printf.sprintf "{\"type\":\"gauge\",\"value\":%.17g}" v)
      | Histo { count; sum; buckets } ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"type\":\"histogram\",\"count\":%d,\"sum\":%.17g,\"buckets\":["
             count sum);
        List.iteri
          (fun j (bound, n) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "{\"le\":%s,\"n\":%d}"
                 (if bound = infinity then "\"+inf\""
                  else Printf.sprintf "%.17g" bound)
                 n))
          buckets;
        Buffer.add_string b "]}")
    snap;
  Buffer.add_string b "}}";
  Buffer.contents b

let write_json path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (render_json snap);
      output_char oc '\n')

let render snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, s) ->
      match s with
      | Count n -> Buffer.add_string b (Printf.sprintf "%-48s %d\n" name n)
      | Value v -> Buffer.add_string b (Printf.sprintf "%-48s %g\n" name v)
      | Histo { count; sum; _ } ->
        Buffer.add_string b
          (Printf.sprintf "%-48s count=%d sum=%g mean=%g\n" name count sum
             (if count = 0 then 0.0 else sum /. float_of_int count)))
    snap;
  Buffer.contents b
