(* Prometheus/OpenMetrics text exposition of a Metrics snapshot.

   Mapping (documented in DESIGN.md):
   - [Count] samples become counters: the family is declared
     [# TYPE n counter] and each sample is rendered as [n_total].
   - [Value] samples become gauges.
   - [Histo] samples become histograms: the registry's per-bucket
     counts are non-cumulative (last bound [infinity]); exposition
     buckets are cumulative with [le="+Inf"], plus [_sum]/[_count].
   - Registry names ([driver.on_fraction_pct]) are sanitised to the
     exposition charset ([a-zA-Z0-9_:], dots become underscores);
     label values escape backslash, double-quote and newline.
   The output always ends with [# EOF]. *)

(* ------------------------------------------------------------------ *)
(* Canonical-key splitting: the registry's snapshot keys are
   [name{k=v,...}] with labels already sorted.  Label values are raw;
   a value containing ',' re-joins the segment it split. *)

let split_key key =
  let n = String.length key in
  match String.index_opt key '{' with
  | Some i when n > 0 && key.[n - 1] = '}' ->
    let base = String.sub key 0 i in
    let inner = String.sub key (i + 1) (n - i - 2) in
    let segs = String.split_on_char ',' inner in
    let labels =
      List.fold_left
        (fun acc seg ->
          match String.index_opt seg '=' with
          | Some j ->
            (String.sub seg 0 j, String.sub seg (j + 1) (String.length seg - j - 1))
            :: acc
          | None -> (
            (* no '=': the previous value contained a comma *)
            match acc with
            | (k, v) :: rest -> (k, v ^ "," ^ seg) :: rest
            | [] -> (seg, "") :: acc))
        [] segs
    in
    (base, List.rev labels)
  | _ -> (key, [])

let sanitize_name s =
  let ok i c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || c = '_' || c = ':'
    || (c >= '0' && c <= '9' && i > 0)
  in
  let b = Bytes.of_string s in
  Bytes.iteri (fun i c -> if not (ok i c) then Bytes.set b i '_') b;
  if s = "" then "_" else Bytes.to_string b

let sanitize_label_name s =
  let ok i c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || c = '_'
    || (c >= '0' && c <= '9' && i > 0)
  in
  let b = Bytes.of_string s in
  Bytes.iteri (fun i c -> if not (ok i c) then Bytes.set b i '_') b;
  if s = "" then "_" else Bytes.to_string b

let escape_label_value s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_label_name k)
               (escape_label_value v))
           labels)
    ^ "}"

let format_bound b =
  if b = infinity then "+Inf" else Printf.sprintf "%.12g" b

let format_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* ------------------------------------------------------------------ *)
(* Rendering *)

let kind_of_sample = function
  | Metrics.Count _ -> "counter"
  | Metrics.Value _ -> "gauge"
  | Metrics.Histo _ -> "histogram"

let render (snap : Metrics.snapshot) =
  (* Group by sanitised family name, preserving first-appearance order
     of families: the snapshot is sorted by canonical key, which can
     interleave unlabelled and labelled samples of different families
     ([foo] < [foo_bar] < [foo{...}]), so a plain pass would emit a
     duplicate [# TYPE]. *)
  let order = ref [] in
  let families = Hashtbl.create 16 in
  List.iter
    (fun (key, sample) ->
      let base, labels = split_key key in
      let fname = sanitize_name base in
      let fkey = (fname, kind_of_sample sample) in
      (match Hashtbl.find_opt families fkey with
      | None ->
        order := fkey :: !order;
        Hashtbl.add families fkey [ (labels, sample) ]
      | Some xs -> Hashtbl.replace families fkey ((labels, sample) :: xs)))
    snap;
  let b = Buffer.create 1024 in
  List.iter
    (fun ((fname, kind) as fkey) ->
      let samples = List.rev (Hashtbl.find families fkey) in
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" fname kind);
      List.iter
        (fun (labels, sample) ->
          let ls = render_labels labels in
          match sample with
          | Metrics.Count n ->
            Buffer.add_string b (Printf.sprintf "%s_total%s %d\n" fname ls n)
          | Metrics.Value v ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" fname ls (format_value v))
          | Metrics.Histo { count; sum; buckets } ->
            let cum = ref 0 in
            List.iter
              (fun (bound, n) ->
                cum := !cum + n;
                (* user labels first, [le] last *)
                let le =
                  List.filter (fun (k, _) -> k <> "le") labels
                  @ [ ("le", format_bound bound) ]
                in
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" fname (render_labels le)
                     !cum))
              buckets;
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" fname ls (format_value sum));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" fname ls count))
        samples)
    (List.rev !order);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write path (snap : Metrics.snapshot) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (render snap);
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Mini-parser + promtool-style lint, used by the round-trip tests and
   [sweeptrace lint]. *)

type psample = {
  sname : string;
  labels : (string * string) list;
  value : float;
}

type family = {
  fname : string;
  ftype : string;
  samples : psample list;
}

exception Bad of string

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let parse_sample_line line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then raise (Bad "expected metric name");
  let sname = String.sub line 0 !i in
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let stop = ref false in
    while not !stop do
      if !i >= n then raise (Bad "unterminated label set");
      if line.[!i] = '}' then begin
        incr i;
        stop := true
      end
      else begin
        let ls = !i in
        while !i < n && is_name_char line.[!i] do incr i done;
        if !i = ls then raise (Bad "expected label name");
        let lname = String.sub line ls (!i - ls) in
        if !i >= n || line.[!i] <> '=' then raise (Bad "expected '='");
        incr i;
        if !i >= n || line.[!i] <> '"' then raise (Bad "expected '\"'");
        incr i;
        let b = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= n then raise (Bad "unterminated label value");
          (match line.[!i] with
          | '"' -> closed := true
          | '\\' ->
            if !i + 1 >= n then raise (Bad "dangling escape");
            incr i;
            (match line.[!i] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | c -> raise (Bad (Printf.sprintf "bad escape '\\%c'" c)))
          | c -> Buffer.add_char b c);
          incr i
        done;
        labels := (lname, Buffer.contents b) :: !labels;
        if !i < n && line.[!i] = ',' then incr i
      end
    done
  end;
  if !i >= n || line.[!i] <> ' ' then raise (Bad "expected space before value");
  let v = String.trim (String.sub line !i (n - !i)) in
  let value =
    match v with
    | "+Inf" -> infinity
    | "-Inf" -> neg_infinity
    | _ -> (
      match float_of_string_opt v with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "bad value %S" v)))
  in
  { sname; labels = List.rev !labels; value }

let sample_belongs ~fname ~ftype sname =
  match ftype with
  | "counter" -> sname = fname ^ "_total"
  | "gauge" -> sname = fname
  | "histogram" ->
    sname = fname ^ "_bucket" || sname = fname ^ "_sum"
    || sname = fname ^ "_count"
  | _ -> false

let parse text =
  let lines = String.split_on_char '\n' text in
  let families = ref [] in
  let seen_types = Hashtbl.create 16 in
  let cur = ref None in
  let eof = ref false in
  let push () =
    match !cur with
    | None -> ()
    | Some (fname, ftype, samples) ->
      families := { fname; ftype; samples = List.rev samples } :: !families;
      cur := None
  in
  try
    List.iteri
      (fun idx line ->
        let ln = idx + 1 in
        let fail msg = raise (Bad (Printf.sprintf "line %d: %s" ln msg)) in
        if line = "" then ()
        else if !eof then fail "content after # EOF"
        else if line = "# EOF" then begin
          push ();
          eof := true
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          push ();
          match String.split_on_char ' ' line with
          | [ "#"; "TYPE"; fname; ftype ] ->
            if not (List.mem ftype [ "counter"; "gauge"; "histogram" ]) then
              fail (Printf.sprintf "unknown type %S" ftype);
            if Hashtbl.mem seen_types fname then
              fail (Printf.sprintf "duplicate # TYPE for %s" fname);
            Hashtbl.add seen_types fname ();
            cur := Some (fname, ftype, [])
          | _ -> fail "malformed # TYPE line"
        end
        else if String.length line >= 1 && line.[0] = '#' then ()
        else begin
          let s = try parse_sample_line line with Bad m -> fail m in
          match !cur with
          | None -> fail "sample before any # TYPE"
          | Some (fname, ftype, samples) ->
            if not (sample_belongs ~fname ~ftype s.sname) then
              fail
                (Printf.sprintf "sample %s does not belong to %s family %s"
                   s.sname ftype fname);
            cur := Some (fname, ftype, s :: samples)
        end)
      lines;
    if not !eof then raise (Bad "missing # EOF terminator");
    Ok (List.rev !families)
  with Bad msg -> Error msg

(* Histogram sanity on a parsed family: cumulative non-decreasing
   buckets ending at le="+Inf", with _count equal to the +Inf bucket
   for each distinct label set. *)
let check_histogram f =
  let key_of labels =
    String.concat ","
      (List.sort compare
         (List.filter_map
            (fun (k, v) -> if k = "le" then None else Some (k ^ "=" ^ v))
            labels))
  in
  let groups = Hashtbl.create 4 in
  List.iter
    (fun s ->
      let k = key_of s.labels in
      let g =
        match Hashtbl.find_opt groups k with
        | Some g -> g
        | None ->
          let g = ref ([], None) in
          Hashtbl.add groups k g;
          g
      in
      let buckets, count = !g in
      if s.sname = f.fname ^ "_bucket" then begin
        match List.assoc_opt "le" s.labels with
        | None -> raise (Bad (f.fname ^ ": _bucket sample without le label"))
        | Some le -> g := ((le, s.value) :: buckets, count)
      end
      else if s.sname = f.fname ^ "_count" then g := (buckets, Some s.value))
    f.samples;
  Hashtbl.iter
    (fun k g ->
      let buckets, count = !g in
      let buckets = List.rev buckets in
      if buckets = [] then
        raise (Bad (Printf.sprintf "%s{%s}: histogram without buckets" f.fname k));
      let last = ref neg_infinity in
      List.iter
        (fun (_, v) ->
          if v < !last then
            raise
              (Bad
                 (Printf.sprintf "%s{%s}: bucket counts not cumulative" f.fname k));
          last := v)
        buckets;
      (match List.rev buckets with
      | ("+Inf", inf_count) :: _ -> (
        match count with
        | Some c when c <> inf_count ->
          raise
            (Bad
               (Printf.sprintf "%s{%s}: _count %g <> +Inf bucket %g" f.fname k c
                  inf_count))
        | None ->
          raise (Bad (Printf.sprintf "%s{%s}: missing _count" f.fname k))
        | Some _ -> ())
      | _ ->
        raise (Bad (Printf.sprintf "%s{%s}: last bucket is not +Inf" f.fname k))))
    groups

let lint text =
  match parse text with
  | Error e -> Error e
  | Ok families -> (
    try
      List.iter
        (fun f -> if f.ftype = "histogram" then check_histogram f)
        families;
      Ok families
    with Bad msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Periodic exporter: mutex-guarded, wall-clock throttled, atomic
   write.  [tick] is cheap when the interval has not elapsed. *)

type exporter = {
  path : string;
  interval_s : float;
  lock : Mutex.t;
  mutable last_s : float;
}

let exporter ~path ?(interval_s = 1.0) () =
  { path; interval_s; lock = Mutex.create (); last_s = neg_infinity }

let flush e =
  Mutex.lock e.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock e.lock)
    (fun () ->
      e.last_s <- Unix.gettimeofday ();
      write e.path (Metrics.snapshot ()))

let tick e =
  let now = Unix.gettimeofday () in
  if now -. e.last_s >= e.interval_s then begin
    Mutex.lock e.lock;
    let due = now -. e.last_s >= e.interval_s in
    if due then e.last_s <- now;
    Mutex.unlock e.lock;
    if due then
      (* snapshot + write outside the lock: concurrent ticks were
         already de-duplicated by the timestamp exchange above *)
      write e.path (Metrics.snapshot ())
  end
