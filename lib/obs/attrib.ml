(* Per-PC attribution counters.

   One [t] rides along a single simulated run and pins every unit of
   simulated cost — time, energy, NVM line-writes, cache misses,
   persist stalls, re-executed work — to the program counter that
   incurred it.  The whole design is shaped by the hot loop's
   zero-allocation discipline:

   - All counters are packed parallel arrays indexed by decoded PC.
     Int counters are [int array]; time/energy counters are flat
     [float array]s, so accumulation is an unboxed load-add-store.
   - There is no "is attribution on?" branch on the hot path.  A
     disabled [t] has length-1 arrays and [mask = 0]; an armed one has
     full-length arrays and [mask = -1].  The loop indexes with
     [pc land mask], so the disabled case degenerates to harmless
     stores into slot 0 of a one-slot buffer — same instruction
     sequence either way, no branch, no allocation.
   - The driver open-codes the per-instruction update against these
     public fields (a cross-module call per instruction would defeat
     inlining under the dev profile's [-opaque]); this module only
     provides the cold-path entry points.

   Re-execution accounting uses an epoch/stamp/delta scheme: [epoch]
   advances whenever work is committed (a region boundary retires, or a
   JIT backup banks state); [delta.(pc)] counts instructions executed
   at [pc] since [stamp.(pc)] was last brought up to the current epoch.
   On a power failure the un-committed tail is exactly the set of PCs
   with [stamp = epoch]; harvesting their deltas into [reexec] gives
   per-PC counts of work that the reboot will redo.  For designs whose
   persists complete asynchronously (SweepCache's background sweep)
   the committed boundary can trail the architectural region boundary,
   so this measures a lower bound on re-executed work — see DESIGN.md
   §9. *)

type t = {
  len : int;  (** program length the armed counters cover *)
  mask : int;  (** -1 when armed, 0 when disabled *)
  count : int array;  (** instructions executed at this PC *)
  reexec : int array;  (** executed-then-discarded instructions *)
  nvm_writes : int array;  (** NVM line-writes during execution here *)
  ckpt_nvm_writes : int array;
      (** NVM line-writes from cold machinery (backup / restore /
          final drain) charged to the PC where it fired *)
  cache_misses : int array;
  crashes : int array;  (** power failures that struck at this PC *)
  ns : float array;  (** simulated time spent executing here *)
  stall_ns : float array;  (** persist-buffer wait + WAW stalls *)
  joules : float array;  (** consume energy (execution + final drain) *)
  backup_joules : float array;
  restore_joules : float array;
  ckpt_ns : float array;  (** backup/restore/drain time charged here *)
  stamp : int array;  (** internal: epoch of last execution at PC *)
  delta : int array;  (** internal: instrs at PC since [stamp] epoch *)
  mutable epoch : int;  (** internal: bumped on every commit *)
  mutable total_reexec : int;  (** sum of [reexec], kept incrementally *)
}

let make ~len ~mask =
  {
    len;
    mask;
    count = Array.make len 0;
    reexec = Array.make len 0;
    nvm_writes = Array.make len 0;
    ckpt_nvm_writes = Array.make len 0;
    cache_misses = Array.make len 0;
    crashes = Array.make len 0;
    ns = Array.make len 0.0;
    stall_ns = Array.make len 0.0;
    joules = Array.make len 0.0;
    backup_joules = Array.make len 0.0;
    restore_joules = Array.make len 0.0;
    ckpt_ns = Array.make len 0.0;
    stamp = Array.make len (-1);
    delta = Array.make len 0;
    epoch = 0;
    total_reexec = 0;
  }

let create ~len =
  if len <= 0 then invalid_arg "Attrib.create: len must be positive";
  make ~len ~mask:(-1)

(* A fresh sink per run: disabled instances still receive hot-path
   stores into their slot-0 buffers, so sharing one across domains
   would be a data race.  Allocation here is cold (once per run). *)
let disabled () = make ~len:1 ~mask:0

let armed t = t.mask <> 0
let length t = t.len

let note_commit t = t.epoch <- t.epoch + 1

let note_crash t ~pc =
  let e = t.epoch in
  let discarded = ref 0 in
  for i = 0 to t.len - 1 do
    if t.stamp.(i) = e then begin
      let d = t.delta.(i) in
      t.reexec.(i) <- t.reexec.(i) + d;
      discarded := !discarded + d
    end
  done;
  t.total_reexec <- t.total_reexec + !discarded;
  t.epoch <- e + 1;
  let i = pc land t.mask in
  t.crashes.(i) <- t.crashes.(i) + 1;
  !discarded

let note_cold t ~pc ?(nvm_writes = 0) ?(cache_misses = 0) ?(ns = 0.0)
    ?(joules = 0.0) ?(backup_joules = 0.0) ?(restore_joules = 0.0) () =
  let i = pc land t.mask in
  t.ckpt_nvm_writes.(i) <- t.ckpt_nvm_writes.(i) + nvm_writes;
  t.cache_misses.(i) <- t.cache_misses.(i) + cache_misses;
  t.ckpt_ns.(i) <- t.ckpt_ns.(i) +. ns;
  t.joules.(i) <- t.joules.(i) +. joules;
  t.backup_joules.(i) <- t.backup_joules.(i) +. backup_joules;
  t.restore_joules.(i) <- t.restore_joules.(i) +. restore_joules

let total_reexec t = t.total_reexec

let total_int a = Array.fold_left ( + ) 0 a
let total_float a = Array.fold_left ( +. ) 0.0 a

type totals = {
  t_instructions : int;
  t_reexec : int;
  t_nvm_writes : int;
  t_ckpt_nvm_writes : int;
  t_cache_misses : int;
  t_crashes : int;
  t_ns : float;
  t_stall_ns : float;
  t_joules : float;
  t_backup_joules : float;
  t_restore_joules : float;
  t_ckpt_ns : float;
}

let totals t =
  {
    t_instructions = total_int t.count;
    t_reexec = total_int t.reexec;
    t_nvm_writes = total_int t.nvm_writes;
    t_ckpt_nvm_writes = total_int t.ckpt_nvm_writes;
    t_cache_misses = total_int t.cache_misses;
    t_crashes = total_int t.crashes;
    t_ns = total_float t.ns;
    t_stall_ns = total_float t.stall_ns;
    t_joules = total_float t.joules;
    t_backup_joules = total_float t.backup_joules;
    t_restore_joules = total_float t.restore_joules;
    t_ckpt_ns = total_float t.ckpt_ns;
  }
