(** Prometheus/OpenMetrics text exposition of {!Metrics} snapshots.

    Mapping: [Count] samples render as counters (samples suffixed
    [_total]), [Value] samples as gauges, [Histo] samples as
    histograms with cumulative [le] buckets (terminated by
    [le="+Inf"]) plus [_sum]/[_count].  Registry names are sanitised
    to the exposition charset (dots become underscores); label values
    are escaped.  Output ends with the [# EOF] terminator. *)

val render : Metrics.snapshot -> string

val write : string -> Metrics.snapshot -> unit
(** Atomic: renders to [path ^ ".tmp"], then renames over [path], so
    a scraper never reads a half-written exposition. *)

val sanitize_name : string -> string
(** Exposition metric name: [a-zA-Z0-9_:], no leading digit. *)

val escape_label_value : string -> string
(** Escape backslash, double-quote and newline per the exposition
    format. *)

val split_key : string -> string * (string * string) list
(** Split a registry canonical key [name{k=v,...}] back into its base
    name and (unsanitised) labels. *)

(** {2 Mini-parser and lint}

    A promtool-style validator used by the round-trip tests and
    [sweeptrace lint]: line-oriented parse of [# TYPE]/sample lines,
    plus histogram sanity (cumulative buckets, [+Inf] terminal,
    [_count] consistency). *)

type psample = {
  sname : string;
  labels : (string * string) list;  (** decoded, in line order *)
  value : float;
}

type family = {
  fname : string;
  ftype : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  samples : psample list;
}

val parse : string -> (family list, string) result
(** Errors carry a line number.  Requires every sample to follow a
    [# TYPE] declaration it belongs to, and the text to end with
    [# EOF]. *)

val lint : string -> (family list, string) result
(** {!parse} plus histogram checks (cumulative buckets, [+Inf] last,
    [_count] consistency); returns the parsed families on success. *)

(** {2 Periodic exporter} *)

type exporter

val exporter : path:string -> ?interval_s:float -> unit -> exporter
(** Throttled re-exporter for [--metrics-export]: {!tick} rewrites
    [path] (atomically) at most once per [interval_s] (default 1 s)
    wall-clock seconds. Safe to tick from worker domains. *)

val tick : exporter -> unit
val flush : exporter -> unit
(** Unconditional write — call once at end of run. *)
