(* Chunked, resumable fleet execution.

   The population is walked in canonical device order (id 0, 1, 2, …)
   in fixed-size chunks.  Each chunk instantiates its devices, ships
   their jobs to the executor (domain pool or supervised worker fleet —
   whatever the config says), then folds every device's outcome into
   the streaming sketch *sequentially, in device order*, clears the
   in-memory results store, and appends one cumulative journal line.
   The fold never runs concurrently with anything, so the sketch's
   float sums are bit-identical at any -j / --workers; the journal
   advances in whole chunks, so a killed run resumes at the last chunk
   boundary and finishes with byte-identical state.

   Memory is O(chunk + sketch): a 100k-device fleet never holds more
   than one chunk of summaries. *)

module Jobs = Sweep_exp.Jobs
module Executor = Sweep_exp.Executor
module Results = Sweep_exp.Results
module Status = Sweep_exp.Status
module Json = Sweep_analyze.Json

let journal_schema_version = 1
let default_chunk = 256

exception Interrupted of { folded : int }

type outcome = {
  state : Sketch.t;
  resumed_from : int;
  report_path : string;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal_path dir = Filename.concat dir "fleet.journal"
let report_path dir = Filename.concat dir "fleet.json"

(* Devices per arm (spec order) and the number of distinct job keys —
   what `sweepfleet plan` prints and what seeds the status cohorts. *)
let census (spec : Spec.t) =
  let counts = Hashtbl.create 8 in
  let seen = Hashtbl.create 1024 in
  let unique = ref 0 in
  for id = 0 to spec.Spec.devices - 1 do
    let d = Device.instantiate spec ~id in
    let arm = d.Device.arm.Spec.arm_name in
    Hashtbl.replace counts arm
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts arm));
    let key = Device.key spec d in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      incr unique
    end
  done;
  ( List.map
      (fun a ->
        ( a.Spec.arm_name,
          Option.value ~default:0 (Hashtbl.find_opt counts a.Spec.arm_name) ))
      spec.Spec.arms,
    !unique )

(* One cumulative journal line: everything needed to resume is in the
   last valid line, so replay never re-reads earlier ones. *)
let append_journal oc ~digest ~done_ state =
  Printf.fprintf oc
    "{\"schema_version\":%d,\"spec_digest\":%S,\"done\":%d,\"state\":%s}\n"
    journal_schema_version digest done_ (Sketch.render state);
  flush oc

(* Last valid journal line wins; a torn final line (the kill arrived
   mid-write) is skipped.  A *valid* line whose digest disagrees is a
   hard error — the spec file changed under an existing journal. *)
let load_journal path ~digest ~devices =
  if not (Sys.file_exists path) then Ok None
  else begin
    let ic = open_in path in
    let last = ref None in
    let err = ref None in
    (try
       while true do
         let line = input_line ic in
         match Json.parse line with
         | Error _ -> () (* torn or garbage line: ignore *)
         | Ok j -> (
           match
             ( Json.int_member "schema_version" j,
               Json.string_member "spec_digest" j,
               Json.int_member "done" j,
               Json.member "state" j )
           with
           | Some v, _, _, _ when v <> journal_schema_version ->
             err :=
               Some (Printf.sprintf "unsupported journal schema_version %d" v)
           | Some _, Some d, _, _ when d <> digest ->
             err :=
               Some
                 "journal belongs to a different spec (digest mismatch) — \
                  remove it or restore the original spec"
           | Some _, Some _, Some done_, Some state_js -> (
             match Sketch.of_json state_js with
             | Error e -> err := Some e
             | Ok st ->
               if done_ < 0 || done_ > devices then
                 err := Some (Printf.sprintf "journal cursor %d out of range" done_)
               else last := Some (st, done_))
           | _ -> () (* structurally incomplete: treat as torn *))
       done
     with End_of_file -> ());
    close_in ic;
    match !err with Some e -> Error (path ^ ": " ^ e) | None -> Ok !last
  end

let declare_status_cohorts (spec : Spec.t) exec_config =
  match exec_config with
  | Some cfg -> (
    match cfg.Executor.status with
    | Some st ->
      let per_arm, _ = census spec in
      List.iter
        (fun (name, total) -> Status.declare_cohort st ~name ~total)
        per_arm
    | None -> ())
  | None -> ()

let write_report ~dir spec state =
  let path = report_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc
    "{\"schema_version\":%d,\"spec_digest\":%S,\"spec\":%s,\"state\":%s}\n"
    journal_schema_version (Spec.digest spec) (Spec.render spec)
    (Sketch.render state);
  close_out oc;
  Sys.rename tmp path;
  path

let run ?workers ?exec_config ?kill_after ?(chunk = default_chunk) ~dir spec =
  (match Spec.validate spec with
  | [] -> ()
  | p :: _ -> invalid_arg ("Runner.run: " ^ p));
  let chunk = max 1 chunk in
  mkdir_p dir;
  let digest = Spec.digest spec in
  let journal = journal_path dir in
  match load_journal journal ~digest ~devices:spec.Spec.devices with
  | Error e -> Error e
  | Ok resume ->
    let state, start =
      match resume with None -> (Sketch.create (), 0) | Some (s, d) -> (s, d)
    in
    declare_status_cohorts spec exec_config;
    let oc =
      open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 journal
    in
    let folded_this_run = ref 0 in
    let result =
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let rec loop d =
            if d >= spec.Spec.devices then ()
            else begin
              let hi = min spec.Spec.devices (d + chunk) in
              let devices =
                List.init (hi - d) (fun i ->
                    Device.instantiate spec ~id:(d + i))
              in
              Executor.execute ?workers ?config:exec_config
                (List.map (Device.job spec) devices);
              (* Sequential fold in device order — the byte-identity
                 contract lives here, not in the executor. *)
              List.iter
                (fun dev ->
                  let arm = dev.Device.arm.Spec.arm_name in
                  match Results.find (Device.key spec dev) with
                  | Some s ->
                    Sketch.fold_device state ~id:dev.Device.id ~arm
                      ~replay:(Device.replay_args spec dev)
                      s.Results.outcome
                  | None ->
                    Sketch.fold_failure state ~id:dev.Device.id ~arm)
                devices;
              (* Bound memory: summaries of this chunk are folded, the
                 store can go.  (The persistent rcache, if configured,
                 still remembers them across runs.) *)
              Results.clear ();
              append_journal oc ~digest ~done_:hi state;
              folded_this_run := !folded_this_run + (hi - d);
              (match kill_after with
              | Some n when n >= 0 && !folded_this_run >= n
                            && hi < spec.Spec.devices ->
                raise (Interrupted { folded = hi })
              | _ -> ());
              loop hi
            end
          in
          loop start)
    in
    ignore result;
    let path = write_report ~dir spec state in
    Ok { state; resumed_from = start; report_path = path }
