(* Declarative fleet specification.

   A spec is the complete, seed-closed description of a simulated
   device population: one base job (benchmark × design × power trace ×
   scale), a jitter envelope every device draws its private power
   perturbation from, and a weighted mixture of hardware cohorts.
   Everything downstream — device instantiation, canonical job keys,
   the aggregation journal — is a pure function of this record, so two
   runs of the same spec file produce byte-identical fleet reports.

   Jitter bounds are integers on purpose: a device's draw lands
   directly in the integer parameters of {!Sweep_exp.Jobs.jittered},
   which render exactly in the canonical key.  No float ever enters a
   device's identity. *)

module Trace = Sweep_energy.Power_trace
module Config = Sweep_machine.Config
module H = Sweep_sim.Harness
module Json = Sweep_analyze.Json

let schema_version = 1

type jitter = {
  max_shift_steps : int;
  amp_spread_permille : int;
  max_drop_bp : int;
}

type arm = {
  arm_name : string;
  weight : int;
  farads : float;
  cache_bytes : int;
  assoc : int;
  buffer_entries : int;
}

type t = {
  name : string;
  devices : int;
  seed : int;
  bench : string;
  scale : float;
  design : H.design;
  trace : Trace.kind;
  v_max : float;
  v_min : float;
  jitter : jitter;
  arms : arm list;
}

let no_jitter = { max_shift_steps = 0; amp_spread_permille = 0; max_drop_bp = 0 }

let default_arm =
  {
    arm_name = "base";
    weight = 1;
    farads = 470e-9;
    cache_bytes = Config.default.Config.cache_size_bytes;
    assoc = Config.default.Config.cache_assoc;
    buffer_entries = Config.default.Config.buffer_entries;
  }

(* Names feed the job label "fleet:<spec>/<arm>" whose canonical key
   uses '|' as the field separator and '/' as the spec/arm separator —
   so neither may appear inside a name (nor whitespace, for the CLI). *)
let valid_name s =
  String.length s > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       s

(* Accept the canonical kind name in any case ("RFOffice" or
   "rfoffice") — the lowercase form is what sweepsim's -t flag takes,
   so spec files and replay command lines can share spelling. *)
let trace_of_name s =
  let s = String.lowercase_ascii s in
  List.find_opt
    (fun k -> String.lowercase_ascii (Trace.kind_name k) = s)
    Trace.all_kinds

(* Short design names, matching sweepsim's -d flag (H.design_name gives
   display names like "SweepCache"). *)
let design_short_names =
  [
    ("nvp", H.Nvp); ("wt", H.Wt); ("nvsram", H.Nvsram);
    ("nvsram-e", H.Nvsram_e); ("replay", H.Replay); ("nvmr", H.Nvmr);
    ("sweep", H.Sweep);
  ]

let design_of_name s =
  List.assoc_opt (String.lowercase_ascii s) design_short_names

let design_name d =
  fst (List.find (fun (_, d') -> d' = d) design_short_names)

let validate t =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if not (valid_name t.name) then
    bad "name %S must be non-empty [a-zA-Z0-9._-]" t.name;
  if t.devices < 1 then bad "devices %d < 1" t.devices;
  if not (List.mem t.bench (Sweep_workloads.Registry.names ())) then
    bad "unknown benchmark %S" t.bench;
  if not (t.scale > 0.0 && t.scale <= 1.0) then
    bad "scale %g outside (0, 1]" t.scale;
  if not (t.v_min > 0.0 && t.v_max > t.v_min) then
    bad "thresholds need v_max %g > v_min %g > 0" t.v_max t.v_min;
  if t.jitter.max_shift_steps < 0 then
    bad "jitter.max_shift_steps %d < 0" t.jitter.max_shift_steps;
  (* A spread of 1000 would allow amplitude 0 — a permanently dead
     device that can only stagnate; cap below unity. *)
  if t.jitter.amp_spread_permille < 0 || t.jitter.amp_spread_permille > 999
  then bad "jitter.amp_spread_permille %d outside [0, 999]"
      t.jitter.amp_spread_permille;
  if t.jitter.max_drop_bp < 0 || t.jitter.max_drop_bp > 10000 then
    bad "jitter.max_drop_bp %d outside [0, 10000]" t.jitter.max_drop_bp;
  if t.arms = [] then bad "cohorts must be non-empty";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if not (valid_name a.arm_name) then
        bad "cohort name %S must be non-empty [a-zA-Z0-9._-]" a.arm_name;
      if Hashtbl.mem seen a.arm_name then
        bad "duplicate cohort name %S" a.arm_name;
      Hashtbl.replace seen a.arm_name ();
      if a.weight < 1 then bad "cohort %s: weight %d < 1" a.arm_name a.weight;
      if not (a.farads > 0.0) then
        bad "cohort %s: farads %g <= 0" a.arm_name a.farads;
      if not (Config.valid_geometry ~size:a.cache_bytes ~assoc:a.assoc) then
        bad "cohort %s: invalid cache geometry %dB/%d-way" a.arm_name
          a.cache_bytes a.assoc;
      if a.buffer_entries < 1 then
        bad "cohort %s: buffer_entries %d < 1" a.arm_name a.buffer_entries)
    t.arms;
  List.rev !problems

(* Canonical JSON rendering: fixed field order, %.17g floats — the
   digest below is over these bytes, so it is reproducible across
   processes and OCaml versions. *)
let render t =
  let b = Buffer.create 512 in
  let js = Sweep_obs.Event.json_string in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\":%d,\"name\":%s,\"devices\":%d,\"seed\":%d,\
        \"bench\":%s,\"scale\":%.17g,\"design\":%s,\"trace\":%s,\
        \"v_max\":%.17g,\"v_min\":%.17g,"
       schema_version (js t.name) t.devices t.seed (js t.bench) t.scale
       (js (design_name t.design))
       (js (Trace.kind_name t.trace))
       t.v_max t.v_min);
  Buffer.add_string b
    (Printf.sprintf
       "\"jitter\":{\"max_shift_steps\":%d,\"amp_spread_permille\":%d,\
        \"max_drop_bp\":%d},\"cohorts\":["
       t.jitter.max_shift_steps t.jitter.amp_spread_permille
       t.jitter.max_drop_bp);
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":%s,\"weight\":%d,\"farads\":%.17g,\"cache_bytes\":%d,\
            \"assoc\":%d,\"buffer_entries\":%d}"
           (js a.arm_name) a.weight a.farads a.cache_bytes a.assoc
           a.buffer_entries))
    t.arms;
  Buffer.add_string b "]}";
  Buffer.contents b

let digest t = Digest.to_hex (Digest.string (render t))

let ( let* ) = Result.bind

let req what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %s" what)

(* Optional field with a default — absent is fine, present-but-mistyped
   is an error, so a typo'd spec never silently falls back. *)
let opt what conv default j =
  match Json.member what j with
  | None -> Ok default
  | Some v -> (
    match conv v with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "mistyped field %s" what))

let jitter_of_json j =
  let* max_shift_steps =
    opt "max_shift_steps" Json.to_int no_jitter.max_shift_steps j
  in
  let* amp_spread_permille =
    opt "amp_spread_permille" Json.to_int no_jitter.amp_spread_permille j
  in
  let* max_drop_bp = opt "max_drop_bp" Json.to_int no_jitter.max_drop_bp j in
  Ok { max_shift_steps; amp_spread_permille; max_drop_bp }

let arm_of_json j =
  let* arm_name = req "cohorts[].name" (Json.string_member "name" j) in
  let* weight = opt "weight" Json.to_int default_arm.weight j in
  let* farads = opt "farads" Json.to_float default_arm.farads j in
  let* cache_bytes = opt "cache_bytes" Json.to_int default_arm.cache_bytes j in
  let* assoc = opt "assoc" Json.to_int default_arm.assoc j in
  let* buffer_entries =
    opt "buffer_entries" Json.to_int default_arm.buffer_entries j
  in
  Ok { arm_name; weight; farads; cache_bytes; assoc; buffer_entries }

let of_json j =
  let* v = req "schema_version" (Json.int_member "schema_version" j) in
  if v <> schema_version then
    Error (Printf.sprintf "unsupported fleet spec schema_version %d" v)
  else
    let* name = req "name" (Json.string_member "name" j) in
    let* devices = req "devices" (Json.int_member "devices" j) in
    let* seed = req "seed" (Json.int_member "seed" j) in
    let* bench = req "bench" (Json.string_member "bench" j) in
    let* scale = opt "scale" Json.to_float 1.0 j in
    let* design_s = opt "design" Json.to_string "sweep" j in
    let* design =
      match design_of_name design_s with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "unknown design %S" design_s)
    in
    let* trace_s =
      opt "trace" Json.to_string (Trace.kind_name Trace.Rf_office) j
    in
    let* trace =
      match trace_of_name trace_s with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown trace %S" trace_s)
    in
    let* v_max = opt "v_max" Json.to_float 3.5 j in
    let* v_min = opt "v_min" Json.to_float 2.8 j in
    let* jitter =
      match Json.member "jitter" j with
      | None -> Ok no_jitter
      | Some jj -> jitter_of_json jj
    in
    let* arm_js =
      match Json.member "cohorts" j with
      | None -> Ok []
      | Some v -> (
        match Json.to_list v with
        | Some l -> Ok l
        | None -> Error "mistyped field cohorts")
    in
    let* arms =
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          let* a = arm_of_json a in
          Ok (a :: acc))
        (Ok []) arm_js
    in
    let arms = match List.rev arms with [] -> [ default_arm ] | l -> l in
    let t =
      { name; devices; seed; bench; scale; design; trace; v_max; v_min;
        jitter; arms }
    in
    (match validate t with
    | [] -> Ok t
    | p :: _ -> Error p)

let load path =
  match Json.parse_file path with
  | Error e -> Error (path ^ ": " ^ e)
  | Ok j -> (
    match of_json j with Error e -> Error (path ^ ": " ^ e) | Ok t -> Ok t)
