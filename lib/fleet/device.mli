(** Pure per-device instantiation: (spec, id) → one concrete device.

    Each device owns a private SplitMix64 stream seeded from a fixed
    mix of the fleet seed and its id, and performs exactly five draws
    in a fixed order (cohort, time-shift, amplitude, dropout odds,
    dropout seed).  The draw order and count are part of the fleet
    format: they never depend on the drawn values, so any device can be
    re-derived in isolation — a tail device from a 100k-population
    report replays without instantiating its neighbours. *)

type t = {
  id : int;
  arm : Spec.arm;
  shift_steps : int;
  amp_permille : int;
  drop_bp : int;
  drop_seed : int;
}

val device_seed : seed:int -> id:int -> int
(** The (pure) seed of device [id]'s draw stream. *)

val instantiate : Spec.t -> id:int -> t
(** Raises [Invalid_argument] when [id] is outside [0, devices). *)

val label : Spec.t -> t -> string
(** Job label ["fleet:<spec>/<arm>"]. *)

val cohort_of_key : string -> string
(** Arm name back out of a canonical fleet job key — the status file's
    cohort rollup function. *)

val setting : Spec.t -> t -> Sweep_exp.Exp_common.setting
(** Arm hardware over {!Sweep_machine.Config.default} with the default
    compiler options (what sweepsim uses), labelled with {!label}. *)

val power : Spec.t -> t -> Sweep_exp.Jobs.power_spec
(** The device's {!Sweep_exp.Jobs.Jittered} power spec. *)

val job : Spec.t -> t -> Sweep_exp.Jobs.t
val key : Spec.t -> t -> string
(** Canonical job key.  Distinct devices that drew identical parameters
    share a key — and therefore, correctly, one simulation. *)

val replay_args : Spec.t -> t -> string
(** A complete sweepsim argument line reproducing this device's exact
    simulation (benchmark, design, trace, thresholds, geometry and all
    four jitter parameters). *)
