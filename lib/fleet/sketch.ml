(* Streaming distribution sketches for fleet aggregation.

   A sketch is a set of fixed-bin histograms — bins chosen once, from
   the metric's physical range, never from the data — so folding
   devices into it is associative, order-independent for the counts,
   and O(1) memory no matter the population size.  The fold order is
   still canonical (device 0, 1, 2, …, enforced by the runner) so the
   float sums are bit-identical at any -j / --workers and across
   kill/resume: float addition is not associative, the fold order is
   therefore part of the format.

   Bin layout per metric:
   - forward-progress rate (instr/s): log10 bins, 8 per decade over
     [1, 1e9) — 72 bins, under/overflow clamped to the first/last bin;
   - total energy (J): log10 bins, 8 per decade over [1e-9, 1e3) — 96;
   - reboot count: unit-width bins over [0, 512), clamped;
   - outage-survival fraction: 101 bins, floor(x * 100).

   A quantile is read back as the upper edge of the first bin whose
   cumulative count reaches ceil(q * n), clamped to the observed
   [min, max] — a conservative estimate whose error is bounded by the
   bin width (≤ 33% relative for the log10 metrics, exact for reboot
   counts below 511, ≤ 1 point for survival). *)

type hist = {
  edges : float array;  (* upper edge of each bin, ascending *)
  bins : int array;
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let log_edges ~per_decade ~lo_exp ~hi_exp =
  let n = (hi_exp - lo_exp) * per_decade in
  Array.init n (fun i ->
      10.0 ** (float_of_int lo_exp +. (float_of_int (i + 1) /. float_of_int per_decade)))

let rate_edges = log_edges ~per_decade:8 ~lo_exp:0 ~hi_exp:9
let energy_edges = log_edges ~per_decade:8 ~lo_exp:(-9) ~hi_exp:3
let reboot_edges = Array.init 512 (fun i -> float_of_int i)
let survival_edges = Array.init 101 (fun i -> float_of_int i /. 100.0)

let hist edges =
  {
    edges;
    bins = Array.make (Array.length edges) 0;
    count = 0;
    sum = 0.0;
    minv = infinity;
    maxv = neg_infinity;
  }

(* First bin whose upper edge is >= v (clamped to the last bin) —
   binary search over the static edges. *)
let bin_of edges v =
  let n = Array.length edges in
  if v > edges.(n - 1) then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if edges.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h v =
  let v = if Float.is_nan v then 0.0 else v in
  let i = bin_of h.edges v in
  h.bins.(i) <- h.bins.(i) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v

let quantile h q =
  if h.count = 0 then None
  else begin
    let target =
      max 1 (int_of_float (ceil (q *. float_of_int h.count)))
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < target && !i < Array.length h.bins do
      cum := !cum + h.bins.(!i);
      incr i
    done;
    let v = h.edges.(max 0 (!i - 1)) in
    Some (Float.max h.minv (Float.min h.maxv v))
  end

let mean h = if h.count = 0 then None else Some (h.sum /. float_of_int h.count)

(* Per-device metric extraction.  Survival defaults to 1.0 when the
   device saw no outage — nothing threatened it, nothing killed it. *)
type metrics = {
  rate : float;
  energy : float;
  reboots : float;
  survival : float;
}

let metrics_of (o : Sweep_sim.Driver.outcome) =
  let total_ns = Sweep_sim.Driver.total_ns o in
  let rate =
    if total_ns > 0.0 then
      float_of_int o.Sweep_sim.Driver.instructions /. (total_ns /. 1e9)
    else 0.0
  in
  let outages = o.Sweep_sim.Driver.outages in
  let survival =
    if outages = 0 then 1.0
    else
      1.0
      -. (float_of_int o.Sweep_sim.Driver.deaths /. float_of_int outages)
  in
  {
    rate;
    energy = Sweep_sim.Driver.total_joules o;
    reboots = float_of_int outages;
    survival;
  }

(* One aggregation group (the whole fleet, or one cohort). *)
type group = {
  mutable devices : int;
  mutable failed : int;
  h_rate : hist;
  h_energy : hist;
  h_reboots : hist;
  h_survival : hist;
}

let group () =
  {
    devices = 0;
    failed = 0;
    h_rate = hist rate_edges;
    h_energy = hist energy_edges;
    h_reboots = hist reboot_edges;
    h_survival = hist survival_edges;
  }

(* Tail-device record: enough to rank and to replay.  The replay
   string is a full sweepsim argument line (the spec is not available
   to report readers, so the sketch carries it verbatim). *)
type tail = {
  t_id : int;
  t_arm : string;
  t_rate : float;
  t_energy : float;
  t_reboots : int;
  t_survival : float;
  t_replay : string;
}

let tail_keep = 8
let failed_keep = 32

type t = {
  total : group;
  mutable cohort_order : string list;  (* reversed first-seen order *)
  cohorts : (string, group) Hashtbl.t;
  mutable tails : tail list;  (* ascending (rate, id), length <= tail_keep *)
  mutable failed_ids : int list;  (* reversed; length <= failed_keep *)
  mutable failed_total : int;
}

let create () =
  {
    total = group ();
    cohort_order = [];
    cohorts = Hashtbl.create 8;
    tails = [];
    failed_ids = [];
    failed_total = 0;
  }

let cohort t name =
  match Hashtbl.find_opt t.cohorts name with
  | Some g -> g
  | None ->
    let g = group () in
    Hashtbl.replace t.cohorts name g;
    t.cohort_order <- name :: t.cohort_order;
    g

let observe_group g (m : metrics) =
  g.devices <- g.devices + 1;
  observe g.h_rate m.rate;
  observe g.h_energy m.energy;
  observe g.h_reboots m.reboots;
  observe g.h_survival m.survival

(* Keep the [tail_keep] smallest entries by (rate, id) — insertion into
   a sorted list, so the kept set is independent of arrival order. *)
let tail_less a b =
  a.t_rate < b.t_rate || (a.t_rate = b.t_rate && a.t_id < b.t_id)

let note_tail t entry =
  let rec insert = function
    | [] -> [ entry ]
    | x :: rest -> if tail_less entry x then entry :: x :: rest
      else x :: insert rest
  in
  let l = insert t.tails in
  t.tails <-
    (if List.length l > tail_keep then List.filteri (fun i _ -> i < tail_keep) l
     else l)

let fold_device t ~id ~arm ~replay (o : Sweep_sim.Driver.outcome) =
  let m = metrics_of o in
  observe_group t.total m;
  observe_group (cohort t arm) m;
  note_tail t
    {
      t_id = id;
      t_arm = arm;
      t_rate = m.rate;
      t_energy = m.energy;
      t_reboots = int_of_float m.reboots;
      t_survival = m.survival;
      t_replay = replay;
    }

let fold_failure t ~id ~arm =
  t.total.failed <- t.total.failed + 1;
  (cohort t arm).failed <- (cohort t arm).failed + 1;
  t.failed_total <- t.failed_total + 1;
  if List.length t.failed_ids < failed_keep then
    t.failed_ids <- id :: t.failed_ids

let devices t = t.total.devices + t.total.failed

(* JSON: self-describing (edges are embedded), sparse bins, %.17g
   floats — byte-stable round-trip, consumed by the journal, the final
   fleet.json and Sweep_analyze.Fleet_view. *)

let json_hist b h =
  Buffer.add_string b
    (Printf.sprintf "{\"count\":%d,\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g,\"edges\":["
       h.count h.sum
       (if h.count = 0 then 0.0 else h.minv)
       (if h.count = 0 then 0.0 else h.maxv));
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%.17g" e))
    h.edges;
  Buffer.add_string b "],\"bins\":[";
  let first = ref true in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b (Printf.sprintf "[%d,%d]" i c)
      end)
    h.bins;
  Buffer.add_string b "]}"

let json_group b g =
  Buffer.add_string b
    (Printf.sprintf "{\"devices\":%d,\"failed\":%d,\"rate\":" g.devices
       g.failed);
  json_hist b g.h_rate;
  Buffer.add_string b ",\"energy\":";
  json_hist b g.h_energy;
  Buffer.add_string b ",\"reboots\":";
  json_hist b g.h_reboots;
  Buffer.add_string b ",\"survival\":";
  json_hist b g.h_survival;
  Buffer.add_char b '}'

let render t =
  let js = Sweep_obs.Event.json_string in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"total\":";
  json_group b t.total;
  Buffer.add_string b ",\"cohorts\":[";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"cohort\":%s,\"group\":" (js name));
      json_group b (Hashtbl.find t.cohorts name);
      Buffer.add_char b '}')
    (List.rev t.cohort_order);
  Buffer.add_string b "],\"tail\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":%d,\"cohort\":%s,\"rate\":%.17g,\"energy\":%.17g,\
            \"reboots\":%d,\"survival\":%.17g,\"replay\":%s}"
           e.t_id (js e.t_arm) e.t_rate e.t_energy e.t_reboots e.t_survival
           (js e.t_replay)))
    t.tails;
  Buffer.add_string b
    (Printf.sprintf "],\"failed_total\":%d,\"failed_ids\":[" t.failed_total);
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int id))
    (List.rev t.failed_ids);
  Buffer.add_string b "]}";
  Buffer.contents b

(* Parse back what [render] wrote — the kill/resume path.  Strict: any
   malformed field is an error, the caller falls back to a fresh
   state only when the journal line itself was torn. *)

module Json = Sweep_analyze.Json

let ( let* ) = Result.bind

let req what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "sketch: missing or mistyped field %s" what)

let hist_of_json j =
  let* count = req "count" (Json.int_member "count" j) in
  let* sum = req "sum" (Json.float_member "sum" j) in
  let* minv = req "min" (Json.float_member "min" j) in
  let* maxv = req "max" (Json.float_member "max" j) in
  let* edges_js = req "edges" (Json.list_member "edges" j) in
  let* edges =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match Json.to_float e with
        | Some f -> Ok (f :: acc)
        | None -> Error "sketch: mistyped edge")
      (Ok []) edges_js
  in
  let edges = Array.of_list (List.rev edges) in
  let h = hist edges in
  h.count <- count;
  h.sum <- sum;
  h.minv <- (if count = 0 then infinity else minv);
  h.maxv <- (if count = 0 then neg_infinity else maxv);
  let* bins_js = req "bins" (Json.list_member "bins" j) in
  let* () =
    List.fold_left
      (fun acc pair ->
        let* () = acc in
        match Json.to_list pair with
        | Some [ i; c ] -> (
          match (Json.to_int i, Json.to_int c) with
          | Some i, Some c when i >= 0 && i < Array.length h.bins ->
            h.bins.(i) <- c;
            Ok ()
          | _ -> Error "sketch: bad bin entry")
        | _ -> Error "sketch: bad bin entry")
      (Ok ()) bins_js
  in
  Ok h

let group_of_json j =
  let* devices = req "devices" (Json.int_member "devices" j) in
  let* failed = req "failed" (Json.int_member "failed" j) in
  let* h_rate = Result.bind (req "rate" (Json.member "rate" j)) hist_of_json in
  let* h_energy =
    Result.bind (req "energy" (Json.member "energy" j)) hist_of_json
  in
  let* h_reboots =
    Result.bind (req "reboots" (Json.member "reboots" j)) hist_of_json
  in
  let* h_survival =
    Result.bind (req "survival" (Json.member "survival" j)) hist_of_json
  in
  Ok { devices; failed; h_rate; h_energy; h_reboots; h_survival }

let of_json j =
  let* total = Result.bind (req "total" (Json.member "total" j)) group_of_json in
  let* cohort_js = req "cohorts" (Json.list_member "cohorts" j) in
  let t =
    {
      total;
      cohort_order = [];
      cohorts = Hashtbl.create 8;
      tails = [];
      failed_ids = [];
      failed_total = 0;
    }
  in
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        let* name = req "cohorts[].cohort" (Json.string_member "cohort" c) in
        let* g =
          Result.bind (req "cohorts[].group" (Json.member "group" c))
            group_of_json
        in
        Hashtbl.replace t.cohorts name g;
        t.cohort_order <- name :: t.cohort_order;
        Ok ())
      (Ok ()) cohort_js
  in
  let* tail_js = req "tail" (Json.list_member "tail" j) in
  let* tails =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* t_id = req "tail[].id" (Json.int_member "id" e) in
        let* t_arm = req "tail[].cohort" (Json.string_member "cohort" e) in
        let* t_rate = req "tail[].rate" (Json.float_member "rate" e) in
        let* t_energy = req "tail[].energy" (Json.float_member "energy" e) in
        let* t_reboots = req "tail[].reboots" (Json.int_member "reboots" e) in
        let* t_survival =
          req "tail[].survival" (Json.float_member "survival" e)
        in
        let* t_replay = req "tail[].replay" (Json.string_member "replay" e) in
        Ok
          ({ t_id; t_arm; t_rate; t_energy; t_reboots; t_survival; t_replay }
          :: acc))
      (Ok []) tail_js
  in
  t.tails <- List.rev tails;
  let* failed_total = req "failed_total" (Json.int_member "failed_total" j) in
  t.failed_total <- failed_total;
  let* failed_js = req "failed_ids" (Json.list_member "failed_ids" j) in
  let* failed =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match Json.to_int e with
        | Some id -> Ok (id :: acc)
        | None -> Error "sketch: mistyped failed id")
      (Ok []) failed_js
  in
  t.failed_ids <- failed;
  Ok t

let parse s =
  match Json.parse s with Error e -> Error e | Ok j -> of_json j
