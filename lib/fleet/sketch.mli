(** Streaming distribution sketches for fleet aggregation.

    Fixed-bin histograms (bins chosen from each metric's physical
    range, never from the data) over four per-device metrics —
    forward-progress rate (instr/s), total energy (J), reboot count,
    outage-survival fraction — kept for the whole fleet and per cohort,
    plus a bounded worst-tail device list and a bounded failed-id list.
    O(1) memory in the population size.

    Devices must be folded in canonical id order: the histogram counts
    are order-independent, but the float [sum] accumulators are not
    (float addition does not associate), and byte-identical output at
    any [-j] / [--workers] and across kill/resume is part of the fleet
    contract.  The runner enforces the order; this module just folds.

    {!render} / {!parse} round-trip the full state as canonical JSON
    (embedded bin edges, sparse bins, [%.17g] floats) — the format of
    the aggregation journal and of the final [fleet.json], consumed
    generically by [Sweep_analyze.Fleet_view]. *)

type hist = {
  edges : float array;  (** upper edge per bin, ascending, static *)
  bins : int array;
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

val quantile : hist -> float -> float option
(** Upper edge of the first bin whose cumulative count reaches
    [ceil (q * count)], clamped to the observed [min, max]; [None] on
    an empty histogram.  Error bounded by the bin width. *)

val mean : hist -> float option

type metrics = {
  rate : float;      (** instructions per total (on+off) second *)
  energy : float;    (** total joules *)
  reboots : float;   (** outage count *)
  survival : float;  (** 1 - deaths/outages; 1.0 with no outage *)
}

val metrics_of : Sweep_sim.Driver.outcome -> metrics

type group = {
  mutable devices : int;
  mutable failed : int;
  h_rate : hist;
  h_energy : hist;
  h_reboots : hist;
  h_survival : hist;
}

type tail = {
  t_id : int;
  t_arm : string;
  t_rate : float;
  t_energy : float;
  t_reboots : int;
  t_survival : float;
  t_replay : string;
      (** full sweepsim argument line replaying this device exactly *)
}

val tail_keep : int
(** Worst devices kept (8), ranked ascending by (rate, id) — the kept
    set is independent of arrival order. *)

val failed_keep : int
(** Failed device ids kept (32); the count is always exact. *)

type t = {
  total : group;
  mutable cohort_order : string list;
  cohorts : (string, group) Hashtbl.t;
  mutable tails : tail list;
  mutable failed_ids : int list;
  mutable failed_total : int;
}

val create : unit -> t
val cohort : t -> string -> group
(** The named cohort's group, created on first use. *)

val fold_device :
  t -> id:int -> arm:string -> replay:string -> Sweep_sim.Driver.outcome ->
  unit
val fold_failure : t -> id:int -> arm:string -> unit
(** A device whose simulation failed (recorded, not summarised):
    counted in [failed] / [failed_total], first {!failed_keep} ids
    kept. *)

val devices : t -> int
(** Devices folded so far (succeeded + failed) — the journal's resume
    cursor. *)

val render : t -> string
(** Canonical JSON of the full state. *)

val parse : string -> (t, string) result
val of_json : Sweep_analyze.Json.t -> (t, string) result
