(** Declarative fleet specification ([sweepfleet]'s input).

    One JSON object describes a whole device population: the base job
    (benchmark × design × power trace × scale × thresholds), an integer
    jitter envelope each device draws its private power perturbation
    from, and a weighted mixture of hardware cohorts (capacitor size,
    cache geometry, persist-buffer capacity).  Device instantiation
    ({!Device}) is a pure function of this record plus a device id, so
    the spec is the complete replay token for every device it
    generates.

    Spec file shape (defaults in brackets):
    {v
    { "schema_version": 1,
      "name": "office-1k", "devices": 1000, "seed": 42,
      "bench": "sha", "scale": 0.05 [1.0],
      "design": "sweep", "trace": "RFOffice",
      "v_max": 3.5, "v_min": 2.8,
      "jitter": { "max_shift_steps": 600000 [0],
                  "amp_spread_permille": 100 [0],
                  "max_drop_bp": 100 [0] },
      "cohorts": [ { "name": "small", "weight": 3 [1],
                     "farads": 470e-9, "cache_bytes": 4096,
                     "assoc": 2, "buffer_entries": 64 }, ... ] }
    v}
    All jitter bounds are integers (trace grid steps, permille,
    basis points) so device draws land exactly in the integer
    parameters of {!Sweep_exp.Jobs.jittered} — no float ever enters a
    device's canonical key. *)

val schema_version : int

type jitter = {
  max_shift_steps : int;
      (** trace right-rotation drawn from [0, max] (100 µs grid) *)
  amp_spread_permille : int;
      (** amplitude scale drawn from [1000 ± spread]; spread <= 999 so
          no device is scaled to zero power *)
  max_drop_bp : int;
      (** per-sample blackout odds drawn from [0, max] basis points *)
}

type arm = {
  arm_name : string;  (** cohort label; [a-zA-Z0-9._-] *)
  weight : int;       (** relative share of the population; >= 1 *)
  farads : float;
  cache_bytes : int;
  assoc : int;
  buffer_entries : int;
}

type t = {
  name : string;  (** fleet label; [a-zA-Z0-9._-] *)
  devices : int;
  seed : int;     (** root of every per-device stochastic draw *)
  bench : string;
  scale : float;
  design : Sweep_sim.Harness.design;
  trace : Sweep_energy.Power_trace.kind;
  v_max : float;
  v_min : float;
  jitter : jitter;
  arms : arm list;
}

val no_jitter : jitter
val default_arm : arm
(** Paper-default hardware (470 nF, 4 kB 2-way, 64 entries), weight 1 —
    what an absent [cohorts] array means. *)

val validate : t -> string list
(** Structural problems ([] means clean).  {!of_json} already rejects
    invalid specs; exposed for specs built in code. *)

val render : t -> string
(** Canonical JSON (fixed field order, [%.17g] floats) — the bytes
    {!digest} hashes, reproducible across processes. *)

val digest : t -> string
(** Hex digest of {!render} — guards the aggregation journal and the
    final report against a spec file edited mid-run. *)

val of_json : Sweep_analyze.Json.t -> (t, string) result
(** Parses and validates (first problem wins).  An absent [cohorts]
    array means a homogeneous fleet of {!default_arm}. *)

val load : string -> (t, string) result

val trace_of_name : string -> Sweep_energy.Power_trace.kind option
(** Case-insensitive canonical kind name ("RFOffice" / "rfoffice"). *)

val design_of_name : string -> Sweep_sim.Harness.design option
(** Short design names matching sweepsim's [-d] flag: nvp, wt, nvsram,
    nvsram-e, replay, nvmr, sweep. *)

val design_name : Sweep_sim.Harness.design -> string
(** Inverse of {!design_of_name}. *)
