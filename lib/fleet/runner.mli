(** Chunked, resumable fleet execution with streaming aggregation.

    Walks the population in canonical device order in fixed-size
    chunks: each chunk's jobs run on the executor (domain pool or
    supervised worker fleet), then every device outcome folds into the
    {!Sketch} sequentially in device order, the in-memory results store
    is cleared, and one cumulative journal line is appended.  The fold
    never runs concurrently, so the sketch is byte-identical at any
    [-j] / [--workers]; the journal advances in whole chunks, so a
    killed run resumes at the last chunk boundary and converges to the
    same bytes.  Memory stays O(chunk + sketch) regardless of
    population size. *)

val journal_schema_version : int

val default_chunk : int
(** 256 devices per executor batch / journal checkpoint. *)

exception Interrupted of { folded : int }
(** Raised (after journalling) when [kill_after] devices have been
    folded this run — the chaos hook for kill/resume tests; maps to
    exit code 3 in sweepfleet. *)

type outcome = {
  state : Sketch.t;
  resumed_from : int;  (** journal cursor the run started from *)
  report_path : string;  (** the written fleet.json *)
}

val census : Spec.t -> (string * int) list * int
(** [(devices per arm in spec order, distinct job keys)] — pure,
    O(devices) draws, no trace materialisation.  What
    [sweepfleet plan] prints and what seeds the status cohorts. *)

val journal_path : string -> string
val report_path : string -> string

val run :
  ?workers:int ->
  ?exec_config:Sweep_exp.Executor.config ->
  ?kill_after:int ->
  ?chunk:int ->
  dir:string ->
  Spec.t ->
  (outcome, string) result
(** Execute (or resume) the fleet, writing [fleet.journal] and, on
    completion, an atomically-renamed [fleet.json] under [dir].
    Resumes automatically from a valid journal; a journal written by a
    different spec (digest mismatch) is an [Error], a torn final line
    is tolerated.  If the executor config carries a status aggregator,
    per-cohort totals are declared up front ({!Sweep_exp.Status.declare_cohort}).
    Raises {!Interrupted} when [kill_after] fires; raises
    [Invalid_argument] on an invalid spec. *)
