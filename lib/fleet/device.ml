(* Pure per-device instantiation.

   A device is entirely determined by (spec, id): a SplitMix64 stream
   seeded from a fixed mix of the fleet seed and the device id drives
   exactly five draws, in a fixed order that is part of the fleet
   format —

     1. cohort (weighted choice over the spec's arms)
     2. trace time-shift steps
     3. amplitude permille
     4. dropout basis points
     5. dropout mask seed

   — so any device can be re-derived in isolation (tail-device replay,
   `sweepfleet plan --device`) without instantiating its neighbours.
   No global RNG, no state: calling [instantiate] twice is the
   identity. *)

module Rng = Sweep_util.Rng
module Config = Sweep_machine.Config
module Pipeline = Sweep_compiler.Pipeline
module Jobs = Sweep_exp.Jobs
module Exp_common = Sweep_exp.Exp_common

type t = {
  id : int;
  arm : Spec.arm;
  shift_steps : int;
  amp_permille : int;
  drop_bp : int;
  drop_seed : int;
}

(* Seed mix: device id stirred into the fleet seed with two odd
   multipliers (splitmix-style), so neighbouring ids land far apart in
   seed space and fleets with nearby seeds don't share device streams. *)
let device_seed ~seed ~id =
  let h = (seed * 0x9e3779b1) + (id * 0x85ebca77) + 0x165667b1 in
  h land max_int

let instantiate (spec : Spec.t) ~id =
  if id < 0 || id >= spec.Spec.devices then
    invalid_arg
      (Printf.sprintf "Device.instantiate: id %d outside [0, %d)" id
         spec.Spec.devices);
  let rng = Rng.create (device_seed ~seed:spec.Spec.seed ~id) in
  (* Draw 1: cohort. *)
  let total_weight =
    List.fold_left (fun acc a -> acc + a.Spec.weight) 0 spec.Spec.arms
  in
  let pick = Rng.int rng total_weight in
  let arm =
    let rec walk acc = function
      | [ a ] -> a
      | a :: rest ->
        let acc = acc + a.Spec.weight in
        if pick < acc then a else walk acc rest
      | [] -> assert false (* validate: arms non-empty *)
    in
    walk 0 spec.Spec.arms
  in
  (* Draws 2-5: always performed (bounds of 1 when the envelope is
     degenerate) so the stream shape never depends on the jitter
     values — widening one bound never re-deals another. *)
  let j = spec.Spec.jitter in
  let shift_steps = Rng.int rng (j.Spec.max_shift_steps + 1) in
  let spread = j.Spec.amp_spread_permille in
  let amp_permille = 1000 - spread + Rng.int rng ((2 * spread) + 1) in
  let drop_bp = Rng.int rng (j.Spec.max_drop_bp + 1) in
  let drop_seed = Rng.int rng 0x40000000 in
  { id; arm; shift_steps; amp_permille; drop_bp; drop_seed }

let label (spec : Spec.t) (d : t) =
  Printf.sprintf "fleet:%s/%s" spec.Spec.name d.arm.Spec.arm_name

(* The arm component of a fleet job label — inverse of [label], for
   the status file's cohort rollup. *)
let cohort_of_key key =
  match String.index_opt key '|' with
  | None -> "?"
  | Some bar -> (
    let label = String.sub key 0 bar in
    match String.index_opt label '/' with
    | None -> label
    | Some slash ->
      String.sub label (slash + 1) (String.length label - slash - 1))

let setting (spec : Spec.t) (d : t) =
  let a = d.arm in
  let config =
    Config.with_buffer_entries
      (Config.with_geometry Config.default ~size:a.Spec.cache_bytes
         ~assoc:a.Spec.assoc)
      a.Spec.buffer_entries
  in
  Exp_common.setting ~label:(label spec d) ~config
    ~options:Pipeline.default_options spec.Spec.design

let power (spec : Spec.t) (d : t) =
  Jobs.jittered ~farads:d.arm.Spec.farads ~v_max:spec.Spec.v_max
    ~v_min:spec.Spec.v_min ~shift_steps:d.shift_steps
    ~amp_permille:d.amp_permille ~drop_bp:d.drop_bp ~drop_seed:d.drop_seed
    spec.Spec.trace

let job (spec : Spec.t) (d : t) =
  Jobs.job ~exp:"fleet" ~scale:spec.Spec.scale (setting spec d)
    ~power:(power spec d) spec.Spec.bench

let key spec d = Jobs.key (job spec d)

(* A complete sweepsim argument line reproducing this device's exact
   simulation — the drill-down path from a fleet report's tail table to
   a single-device rerun. *)
let replay_args (spec : Spec.t) (d : t) =
  Printf.sprintf
    "%s -d %s -t %s --cap %g --v-max %g --v-min %g --scale %g \
     --cache-size %d --assoc %d --buffer-entries %d --jitter-shift-steps %d \
     --jitter-amp-permille %d --jitter-drop-bp %d --jitter-drop-seed %d"
    spec.Spec.bench
    (Spec.design_name spec.Spec.design)
    (String.lowercase_ascii
       (Sweep_energy.Power_trace.kind_name spec.Spec.trace))
    d.arm.Spec.farads spec.Spec.v_max spec.Spec.v_min spec.Spec.scale
    d.arm.Spec.cache_bytes d.arm.Spec.assoc d.arm.Spec.buffer_entries
    d.shift_steps d.amp_permille d.drop_bp d.drop_seed
