type kind = Rf_home | Rf_office | Solar | Thermal

let kind_name = function
  | Rf_home -> "RFHome"
  | Rf_office -> "RFOffice"
  | Solar -> "solar"
  | Thermal -> "thermal"

let all_kinds = [ Rf_home; Rf_office; Solar; Thermal ]

type t = {
  kind : kind;
  dt_s : float;
  samples : float array; (* watts *)
  tag : string option; (* transform provenance, part of the power key *)
}

let dt_s = 1.0e-4 (* 100 us *)
let duration_s = 60.0
let sample_count = int_of_float (duration_s /. dt_s)

(* Two-state (on/off) semi-Markov RF source: exponential dwell times, and
   log-normal-ish power during on-periods.  Home and office differ in
   duty cycle and burst length, office being slightly choppier. *)
let gen_rf rng ~p_on_w ~mean_on_s ~mean_off_s samples =
  let i = ref 0 in
  let on = ref true in
  while !i < Array.length samples do
    let dwell =
      Sweep_util.Rng.exponential rng (if !on then mean_on_s else mean_off_s)
    in
    let steps = max 1 (int_of_float (dwell /. dt_s)) in
    let level =
      if !on then p_on_w *. (0.6 +. (0.8 *. Sweep_util.Rng.float rng 1.0))
      else 0.0
    in
    let stop = min (Array.length samples) (!i + steps) in
    for j = !i to stop - 1 do
      samples.(j) <- level
    done;
    i := stop;
    on := not !on
  done

let gen_solar rng samples =
  (* Slow irradiance drift (clouds) on a stable base. *)
  let base = 300.0e-6 in
  let drift = ref 1.0 in
  Array.iteri
    (fun j _ ->
      if j mod 2000 = 0 then begin
        let step = 0.15 *. Sweep_util.Rng.gaussian rng in
        drift := Sweep_util.Stats.clamp ~lo:0.5 ~hi:1.4 (!drift +. step)
      end;
      samples.(j) <- base *. !drift)
    samples

let gen_thermal rng samples =
  let base = 280.0e-6 in
  Array.iteri
    (fun j _ ->
      let noise = 1.0 +. (0.03 *. Sweep_util.Rng.gaussian rng) in
      samples.(j) <- Float.max 0.0 (base *. noise))
    samples

let make ?(seed = 42) kind =
  let rng = Sweep_util.Rng.create (seed + Hashtbl.hash (kind_name kind)) in
  let samples = Array.make sample_count 0.0 in
  (match kind with
  | Rf_home ->
    gen_rf rng ~p_on_w:700.0e-6 ~mean_on_s:0.0020 ~mean_off_s:0.0026 samples
  | Rf_office ->
    gen_rf rng ~p_on_w:650.0e-6 ~mean_on_s:0.0015 ~mean_off_s:0.0020 samples
  | Solar -> gen_solar rng samples
  | Thermal -> gen_thermal rng samples);
  { kind; dt_s; samples; tag = None }

let kind t = t.kind

let samples t = t.samples
let sample_dt t = t.dt_s
let tag t = t.tag
let with_tag t tag = { t with tag = Some tag }

let power t time_s =
  let idx = int_of_float (time_s /. t.dt_s) in
  let n = Array.length t.samples in
  t.samples.(((idx mod n) + n) mod n)

let mean_power t =
  Array.fold_left ( +. ) 0.0 t.samples /. float_of_int (Array.length t.samples)

let duty_cycle t =
  let live =
    Array.fold_left (fun acc p -> if p > 1.0e-6 then acc + 1 else acc) 0 t.samples
  in
  float_of_int live /. float_of_int (Array.length t.samples)

(* ---- validated transforms (the fleet jitter layer builds on these) ----

   Every transform returns a fresh trace on the same 100 µs grid; the
   input is never mutated.  Validation mirrors [load_csv]: a transform
   that would shift timestamps negative (or otherwise break the
   monotone zero-based grid the zero-order-hold lookup assumes) is a
   [Failure], not a silent corruption. *)

(* Rotate the trace right by [shift_s] seconds: the returned trace at
   time x reads the original at (x - shift_s), wrapping — timestamps
   stay the 0, dt, 2·dt, … grid, so they remain non-negative and
   strictly monotonic by construction.  A negative shift would be a
   left rotation expressible only with negative timestamps pre-wrap;
   reject it (callers wanting one can shift by duration - s). *)
let time_shift t shift_s =
  if not (Float.is_finite shift_s) then
    failwith
      (Printf.sprintf "Power_trace.time_shift: non-finite shift %g" shift_s);
  if shift_s < 0.0 then
    failwith
      (Printf.sprintf
         "Power_trace.time_shift: negative shift %g would produce negative \
          timestamps"
         shift_s);
  let n = Array.length t.samples in
  let steps = int_of_float ((shift_s /. t.dt_s) +. 0.5) mod n in
  if steps = 0 then { t with samples = Array.copy t.samples }
  else
    {
      t with
      samples = Array.init n (fun i -> t.samples.((i - steps + n) mod n));
    }

(* Scale every amplitude by [factor] (harvester efficiency / antenna
   gain jitter).  Timestamps are untouched; a negative factor would
   mean negative harvested power, which the capacitor model has no
   interpretation for — reject it along with NaN/inf. *)
let scale t factor =
  if not (Float.is_finite factor) then
    failwith (Printf.sprintf "Power_trace.scale: non-finite factor %g" factor);
  if factor < 0.0 then
    failwith (Printf.sprintf "Power_trace.scale: negative factor %g" factor);
  { t with samples = Array.map (fun p -> p *. factor) t.samples }

(* Zero each sample independently with probability [frac] (seeded):
   momentary harvester blackouts.  Samples are zeroed in place on the
   grid, never removed — removing rows would compress the timeline and
   de-monotonize the mapping back to wall time. *)
let drop_samples t ~seed ~frac =
  if not (Float.is_finite frac) || frac < 0.0 || frac > 1.0 then
    failwith
      (Printf.sprintf "Power_trace.drop_samples: fraction %g out of [0, 1]"
         frac);
  if frac = 0.0 then { t with samples = Array.copy t.samples }
  else
    let rng = Sweep_util.Rng.create seed in
    {
      t with
      samples =
        Array.map
          (fun p -> if Sweep_util.Rng.float rng 1.0 < frac then 0.0 else p)
          t.samples;
    }

let save_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "time_s,power_w\n";
      Array.iteri
        (fun idx p ->
          Printf.fprintf oc "%.6f,%.9f\n" (float_of_int idx *. t.dt_s) p)
        t.samples)

let load_csv ?(kind = Rf_office) path =
  let ic = open_in path in
  let rows = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" then
             match String.split_on_char ',' line with
             | [ a; b ] -> (
               match (float_of_string_opt a, float_of_string_opt b) with
               | Some time_s, Some p -> rows := (time_s, p) :: !rows
               | None, _ when !rows = [] -> () (* header *)
               | _ -> failwith ("Power_trace.load_csv: bad row " ^ line))
             | _ -> failwith ("Power_trace.load_csv: bad row " ^ line)
         done
       with End_of_file -> ()));
  let rows = List.rev !rows in
  if rows = [] then failwith "Power_trace.load_csv: empty trace";
  (* A negative or non-increasing timestamp would silently corrupt the
     zero-order hold below (earlier rows shadow later ones), and with it
     every outage count downstream — reject the file instead. *)
  ignore
    (List.fold_left
       (fun (prev, row) (ts, _) ->
         if ts < 0.0 then
           failwith
             (Printf.sprintf
                "Power_trace.load_csv: negative timestamp %g (row %d)" ts row);
         if ts <= prev then
           failwith
             (Printf.sprintf
                "Power_trace.load_csv: non-monotonic timestamp %g after %g \
                 (row %d)"
                ts prev row);
         (ts, row + 1))
       (Float.neg_infinity, 1) rows);
  let duration = List.fold_left (fun acc (ts, _) -> Float.max acc ts) 0.0 rows in
  let n = max 1 (int_of_float (duration /. dt_s) + 1) in
  let samples = Array.make n 0.0 in
  (* Zero-order hold: each row's power applies from its timestamp on. *)
  let rec fill rows idx current =
    if idx >= n then ()
    else begin
      let time = float_of_int idx *. dt_s in
      match rows with
      | (ts, p) :: rest when ts <= time -> fill rest idx p
      | _ ->
        samples.(idx) <- current;
        fill rows (idx + 1) current
    end
  in
  fill rows 0 (snd (List.hd rows));
  { kind; dt_s; samples; tag = None }
