(** Synthetic ambient-power traces.

    The paper evaluates with two real RF traces (RFHome, RFOffice) plus
    solar and thermal sources.  Real traces are unavailable, so we
    generate seeded synthetic ones whose *statistics* match the roles the
    paper gives them: RF sources are bursty on/off processes; solar varies
    slowly; thermal is nearly constant.  All four share a similar mean
    power so that differences in results come from stability, not budget
    (see DESIGN.md, substitutions). *)

type kind = Rf_home | Rf_office | Solar | Thermal

val kind_name : kind -> string
val all_kinds : kind list

type t

val make : ?seed:int -> kind -> t
(** Deterministic for a given seed (default 42).  Traces cover ~60 s at
    100 µs resolution and wrap around beyond that. *)

val kind : t -> kind

val power : t -> float -> float
(** [power t time_s] in watts. *)

val samples : t -> float array
(** The raw sample grid (watts).  With {!sample_dt}, lets the driver's
    per-instruction loop do the {!power} lookup inline — index
    [((idx mod n) + n) mod n] for [idx = time_s / sample_dt] — without a
    float-boxing call per instruction. *)

val sample_dt : t -> float
(** Grid spacing of {!samples} in seconds (100 µs). *)

val tag : t -> string option
(** Transform provenance: [None] for a trace straight out of {!make} or
    {!load_csv}; set by a caller (see {!with_tag}) after applying
    transforms, and folded into the canonical power key by the
    experiment layer so two differently-jittered copies of the same
    base trace can never alias. *)

val with_tag : t -> string -> t
(** Label a (typically transformed) trace.  The tag becomes part of job
    keys downstream, so it must not contain ['|'], ['/'] or spaces. *)

(** {2 Validated transforms}

    Per-device jitter for fleet simulation.  Each returns a fresh trace
    on the same 100 µs grid (inputs are never mutated) and raises
    [Failure] rather than producing a trace whose implied timestamps
    would be negative or non-monotonic. *)

val time_shift : t -> float -> t
(** [time_shift t s] rotates the trace right by [s] seconds (the result
    at time x reads [t] at x - s, wrapping at the 60 s boundary).
    Raises [Failure] when [s] is negative or not finite — a left shift
    would need negative timestamps before the wrap. *)

val scale : t -> float -> t
(** [scale t f] multiplies every amplitude by [f].  Raises [Failure]
    when [f] is negative or not finite (negative harvested power has no
    physical meaning). *)

val drop_samples : t -> seed:int -> frac:float -> t
(** [drop_samples t ~seed ~frac] zeroes each 100 µs sample
    independently with probability [frac] (deterministic per [seed]) —
    momentary harvester blackouts.  Samples are zeroed, never removed,
    so the time grid is untouched.  Raises [Failure] when [frac] is
    outside [0, 1] or not finite. *)

val mean_power : t -> float

val duty_cycle : t -> float
(** Fraction of samples with non-negligible power — a burstiness
    indicator (RF ≈ 0.4–0.5, solar/thermal ≈ 1.0). *)

val save_csv : t -> string -> unit
(** Write the trace as "time_s,power_w" rows — for plotting, or for
    feeding a measured trace back in through {!load_csv}. *)

val load_csv : ?kind:kind -> string -> t
(** Read a "time_s,power_w" CSV (header line optional).  Samples are
    resampled onto the trace's native 100 µs grid by zero-order hold;
    [kind] labels the result (default [Rf_office]).  Raises [Failure] on
    a malformed file, an empty trace, or a negative / non-monotonic
    timestamp column (which would silently corrupt the resampling and
    every outage count derived from it). *)
