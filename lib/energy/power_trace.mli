(** Synthetic ambient-power traces.

    The paper evaluates with two real RF traces (RFHome, RFOffice) plus
    solar and thermal sources.  Real traces are unavailable, so we
    generate seeded synthetic ones whose *statistics* match the roles the
    paper gives them: RF sources are bursty on/off processes; solar varies
    slowly; thermal is nearly constant.  All four share a similar mean
    power so that differences in results come from stability, not budget
    (see DESIGN.md, substitutions). *)

type kind = Rf_home | Rf_office | Solar | Thermal

val kind_name : kind -> string
val all_kinds : kind list

type t

val make : ?seed:int -> kind -> t
(** Deterministic for a given seed (default 42).  Traces cover ~60 s at
    100 µs resolution and wrap around beyond that. *)

val kind : t -> kind

val power : t -> float -> float
(** [power t time_s] in watts. *)

val samples : t -> float array
(** The raw sample grid (watts).  With {!sample_dt}, lets the driver's
    per-instruction loop do the {!power} lookup inline — index
    [((idx mod n) + n) mod n] for [idx = time_s / sample_dt] — without a
    float-boxing call per instruction. *)

val sample_dt : t -> float
(** Grid spacing of {!samples} in seconds (100 µs). *)

val mean_power : t -> float

val duty_cycle : t -> float
(** Fraction of samples with non-negligible power — a burstiness
    indicator (RF ≈ 0.4–0.5, solar/thermal ≈ 1.0). *)

val save_csv : t -> string -> unit
(** Write the trace as "time_s,power_w" rows — for plotting, or for
    feeding a measured trace back in through {!load_csv}. *)

val load_csv : ?kind:kind -> string -> t
(** Read a "time_s,power_w" CSV (header line optional).  Samples are
    resampled onto the trace's native 100 µs grid by zero-order hold;
    [kind] labels the result (default [Rf_office]).  Raises [Failure] on
    a malformed file, an empty trace, or a negative / non-monotonic
    timestamp column (which would silently corrupt the resampling and
    every outage count derived from it). *)
