(** Energy-storage capacitor, E = ½CV².

    The simulator integrates harvested power into the capacitor and
    subtracts every consumption event; voltage-threshold crossings drive
    backup/death/reboot decisions in the machines. *)

type t = {
  farads : float;
  v_max : float;
  v_min : float;
  e_max : float;
  mutable energy : float;
}
(** Concrete (and all-float, hence flat): the driver's per-instruction
    loop charges/consumes by direct field arithmetic, because calling
    {!consume}/{!harvest}/{!above} there would box the computed float
    arguments on every dynamic instruction (non-flambda calling
    convention).  Everything off the hot path should use the functions
    below. *)

val create : farads:float -> v_max:float -> v_min:float -> t
(** Starts fully charged at [v_max]. *)

val farads : t -> float
val v_max : t -> float
val v_min : t -> float

val voltage : t -> float
val energy : t -> float

val energy_at : t -> float -> float
(** [energy_at t v] is ½CV² — the stored energy when the voltage is [v]. *)

val set_voltage : t -> float -> unit

val consume : t -> float -> unit
(** Remove joules (floored at zero energy). *)

val harvest : t -> power_w:float -> dt_s:float -> unit
(** Add [power_w *. dt_s] joules, saturating at the [v_max] energy. *)

val above : t -> float -> bool
(** [above t v] — is the voltage at least [v]? *)

val usable_above : t -> float -> float
(** Joules available before the voltage would drop below the threshold. *)
