module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout
module Pb = Sweepcache_core.Persist_buffer

let name = "NvMR"

type saved_line = { base : int; data : int array; dirty : bool }

type shadow = {
  regs : int array;
  pc : int;
  lines : saved_line list;
}

type t = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  detector : Sweep_energy.Detector.t;
  rename : Pb.t;  (** persistent renamed locations of the open epoch *)
  mutable shadow : shadow option;
}

let create cfg prog =
  let nvm = Nvm.create () in
  Sweep_machine.Loader.load nvm prog;
  let detector =
    match cfg.Cfg.detector_override with
    | Some d -> d
    | None ->
      (* Backing up dirty cachelines needs an NVSRAM-class reserve; the
         design then keeps executing below the threshold (its defining
         advantage), gambling that a forced commit lands before death. *)
      Sweep_energy.Detector.jit ~v_backup:3.2 ~v_restore:3.4
  in
  {
    cfg;
    prog;
    cpu = Cpu.create ~entry:prog.entry;
    nvm;
    cache =
      Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes ~assoc:cfg.Cfg.cache_assoc;
    stats = Mstats.create ();
    detector;
    rename = Pb.create ~capacity:(max 1 cfg.Cfg.rename_entries);
    shadow = None;
  }

let cpu t = t.cpu
let nvm t = t.nvm
let cache t = Some t.cache
let mstats t = t.stats
let detector t = t.detector
let halted t = t.cpu.Cpu.halted
let e t = t.cfg.Cfg.energy

let hit_cost t =
  Cost.make
    ~ns:(float_of_int (e t).E.cache_hit_cycles *. E.cycle_ns (e t))
    ~joules:(e t).E.e_cache_access

(* Every store consults the renaming structures to detect a WAR
   dependence on the open epoch (NvMR's defining mechanism); this sits on
   the store path. *)
let rename_check_ns = 2.0

let store_cost t =
  Cost.(
    hit_cost t
    ++ make ~ns:rename_check_ns ~joules:(e t).E.e_buffer_search)

let dirty_saved_lines t =
  let acc = ref [] in
  Cache.iter_lines t.cache (fun line ->
      if line.Cache.valid && line.Cache.dirty then
        acc :=
          { base = line.Cache.base; data = Array.copy line.Cache.data;
            dirty = true }
          :: !acc);
  !acc

(* Commit the open epoch: drain renamed writes to their home locations
   and snapshot registers + dirty lines. *)
let epoch_commit_cost t =
  let entries = Pb.count t.rename in
  let dirty = List.length (dirty_saved_lines t) in
  Cost.(
    Jit_common.reg_backup (e t)
    ++ Jit_common.lines_backup (e t) ~parallel:t.cfg.Cfg.nvsram_parallel dirty
    ++ make
         ~ns:(float_of_int entries *. ((e t).E.nvm_read_ns +. (e t).E.nvm_write_ns))
         ~joules:
           (float_of_int entries
           *. ((e t).E.e_nvm_read +. (e t).E.e_nvm_line_write)))

let epoch_commit t =
  List.iter
    (fun (base, data) -> Nvm.write_line t.nvm base data)
    (Pb.entries_oldest_first t.rename);
  Pb.clear t.rename;
  let regs, pc = Cpu.snapshot t.cpu in
  let lines = dirty_saved_lines t in
  (* Checkpointed lines land in NVM: count the write traffic. *)
  Nvm.add_external_writes t.nvm ~events:(List.length lines)
    ~bytes:(List.length lines * Layout.line_bytes);
  t.shadow <- Some { regs; pc; lines }

(* Fetch a line: the rename buffer may hold a newer version than NVM.
   NvMR's rename table is an indexed hardware map, so the lookup is a
   constant two-probe cost, unlike SweepCache's deliberately cheap
   sequential buffer scan. *)
let rename_lookup_cost t =
  Cost.make
    ~ns:(2.0 *. (e t).E.buffer_search_ns)
    ~joules:(2.0 *. (e t).E.e_buffer_search)

let fetch_line t base =
  match Pb.search t.rename base with
  | Some (data, _) -> (Array.copy data, rename_lookup_cost t)
  | None ->
    ( Nvm.read_line t.nvm base,
      Cost.(
        rename_lookup_cost t
        ++ make ~ns:(e t).E.nvm_read_ns ~joules:(e t).E.e_nvm_read) )

let fill t addr =
  let victim = Cache.victim t.cache addr in
  let evict_cost =
    if victim.Cache.valid && victim.Cache.dirty then begin
      (* Renamed write: quarantined for rollback.  A full rename buffer
         forces an epoch commit first (structural hazard → backup). *)
      let forced =
        if Pb.count t.rename >= Pb.capacity t.rename then begin
          let c = epoch_commit_cost t in
          epoch_commit t;
          t.stats.Mstats.backup_events <- t.stats.Mstats.backup_events + 1;
          t.stats.Mstats.backup_joules <-
            t.stats.Mstats.backup_joules +. c.Cost.joules;
          c
        end
        else Cost.zero
      in
      Pb.push t.rename ~base:victim.Cache.base ~data:victim.Cache.data;
      Cost.(
        forced
        ++ make ~ns:(e t).E.nvm_write_ns ~joules:(e t).E.e_nvm_line_write)
    end
    else Cost.zero
  in
  let base = Layout.line_base addr in
  let data, fetch_cost = fetch_line t base in
  let line = Cache.install t.cache addr data in
  (line, Cost.(evict_cost ++ fetch_cost ++ hit_cost t))

let load t addr =
  match Cache.find t.cache addr with
  | Some line ->
    Cache.record_hit t.cache;
    Cache.touch t.cache line;
    (Cache.read_word line addr, hit_cost t)
  | None ->
    Cache.record_miss t.cache;
    let line, cost = fill t addr in
    (Cache.read_word line addr, cost)

let store t addr value =
  match Cache.find t.cache addr with
  | Some line ->
    Cache.record_hit t.cache;
    Cache.touch t.cache line;
    Cache.write_word line addr value;
    line.Cache.dirty <- true;
    store_cost t
  | None ->
    Cache.record_miss t.cache;
    let line, cost = fill t addr in
    Cache.write_word line addr value;
    line.Cache.dirty <- true;
    Cost.(cost ++ make ~ns:rename_check_ns ~joules:(e t).E.e_buffer_search)

let mem_ops t =
  Exec.nop_region_ops
    {
      Exec.load = (fun addr _ -> load t addr);
      store = (fun addr value _ -> store t addr value);
      clwb = (fun _ _ -> Cost.zero);
      fence = (fun _ -> Cost.zero);
      region_end = (fun _ -> Cost.zero);
    }

let step t ~now_ns = Exec.step t.cfg t.cpu t.prog t.stats (mem_ops t) ~now_ns

let jit_backup_cost t = Some (epoch_commit_cost t)
let commit_jit_backup t ~now_ns =
  epoch_commit t;
  if Sweep_obs.Sink.on () then begin
    let lines =
      match t.shadow with Some { lines; _ } -> List.length lines | None -> 0
    in
    Sweep_obs.Sink.emit ~ns:now_ns (Sweep_obs.Event.Backup_lines { lines })
  end
let continues_after_backup = true

let on_power_failure t ~now_ns:_ =
  Cache.invalidate_all t.cache;
  (* Roll back the open epoch: discard the rename mapping. *)
  Pb.clear t.rename;
  Cpu.reset t.cpu ~entry:t.prog.entry;
  Mstats.reset_region_counters t.stats

let on_reboot t ~now_ns:_ =
  let cost =
    match t.shadow with
    | Some { regs; pc; lines } ->
      Cpu.restore t.cpu (regs, pc);
      List.iter
        (fun saved ->
          let line = Cache.install t.cache saved.base saved.data in
          line.Cache.dirty <- saved.dirty)
        lines;
      Cost.(
        Jit_common.reg_restore (e t)
        ++ Jit_common.lines_restore (e t) ~parallel:t.cfg.Cfg.nvsram_parallel
             (List.length lines))
    | None ->
      Cpu.reset t.cpu ~entry:t.prog.entry;
      Jit_common.reg_restore (e t)
  in
  t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
  t.stats.Mstats.restore_joules <- t.stats.Mstats.restore_joules +. cost.Cost.joules;
  cost

(* End of program: commit the open epoch and flush remaining dirty
   lines. *)
let drain t ~now_ns:_ =
  let c = epoch_commit_cost t in
  List.iter
    (fun (base, data) -> Nvm.write_line t.nvm base data)
    (Pb.entries_oldest_first t.rename);
  Pb.clear t.rename;
  let dirty = Cache.dirty_lines t.cache in
  List.iter
    (fun line ->
      Nvm.write_line t.nvm line.Cache.base line.Cache.data;
      line.Cache.dirty <- false)
    dirty;
  let n = float_of_int (List.length dirty) in
  Cost.(
    c
    ++ make ~ns:(n *. (e t).E.nvm_write_ns)
         ~joules:(n *. (e t).E.e_nvm_line_write))

type t_alias = t

let packed cfg prog =
  let m =
    (module struct
      type t = t_alias

      let name = name
      let create = create
      let cpu = cpu
      let nvm = nvm
      let cache = cache
      let mstats = mstats
      let detector = detector
      let step = step
      let halted = halted
      let jit_backup_cost = jit_backup_cost
      let commit_jit_backup = commit_jit_backup
      let continues_after_backup = continues_after_backup
      let on_power_failure = on_power_failure
      let on_reboot = on_reboot
      let drain = drain
    end : Sweep_machine.Machine_intf.S
      with type t = t_alias)
  in
  Sweep_machine.Machine_intf.Packed (m, create cfg prog)
