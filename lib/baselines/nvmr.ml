module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Acc = Sweep_machine.Exec.Acc
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout
module Pb = Sweepcache_core.Persist_buffer

let name = "NvMR"

type saved_line = { base : int; data : int array; dirty : bool }

type shadow = {
  regs : int array;
  pc : int;
  lines : saved_line list;
}

type t = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  dec : Sweep_isa.Decoded.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  acc : Acc.t;
  mutable ops : Exec.mem_ops;
  detector : Sweep_energy.Detector.t;
  rename : Pb.t;  (** persistent renamed locations of the open epoch *)
  mutable shadow : shadow option;
}

let e t = t.cfg.Cfg.energy

(* Every store consults the renaming structures to detect a WAR
   dependence on the open epoch (NvMR's defining mechanism); this sits on
   the store path. *)
let rename_check_ns = 2.0

let dirty_saved_lines t =
  let acc = ref [] in
  Cache.iter_lines t.cache (fun li ->
      if Cache.valid t.cache li && Cache.dirty t.cache li then
        acc :=
          {
            base = Cache.line_addr t.cache li;
            data = Cache.copy_line_data t.cache li;
            dirty = true;
          }
          :: !acc);
  !acc

(* Commit the open epoch: drain renamed writes to their home locations
   and snapshot registers + dirty lines. *)
let epoch_commit_cost t =
  let entries = Pb.count t.rename in
  let dirty = List.length (dirty_saved_lines t) in
  Cost.(
    Jit_common.reg_backup (e t)
    ++ Jit_common.lines_backup (e t) ~parallel:t.cfg.Cfg.nvsram_parallel dirty
    ++ make
         ~ns:(float_of_int entries *. ((e t).E.nvm_read_ns +. (e t).E.nvm_write_ns))
         ~joules:
           (float_of_int entries
           *. ((e t).E.e_nvm_read +. (e t).E.e_nvm_line_write)))

let epoch_commit t =
  List.iter
    (fun (base, data) -> Nvm.write_line t.nvm base data)
    (Pb.entries_oldest_first t.rename);
  Pb.clear t.rename;
  let regs, pc = Cpu.snapshot t.cpu in
  let lines = dirty_saved_lines t in
  (* Checkpointed lines land in NVM: count the write traffic. *)
  Nvm.add_external_writes t.nvm ~events:(List.length lines)
    ~bytes:(List.length lines * Layout.line_bytes);
  t.shadow <- Some { regs; pc; lines }

let make_ops t =
  let e = e t in
  let hit_ns = float_of_int e.E.cache_hit_cycles *. E.cycle_ns e
  and e_hit = e.E.e_cache_access in
  let nvm_read_ns = e.E.nvm_read_ns
  and e_nvm_read = e.E.e_nvm_read
  and nvm_write_ns = e.E.nvm_write_ns
  and e_nvm_line_write = e.E.e_nvm_line_write in
  (* NvMR's rename table is an indexed hardware map, so a miss lookup is
     a constant two-probe cost, unlike SweepCache's deliberately cheap
     sequential buffer scan. *)
  let lookup_ns = 2.0 *. e.E.buffer_search_ns
  and e_lookup = 2.0 *. e.E.e_buffer_search in
  let e_rename_check = e.E.e_buffer_search in
  (* Fill the victim way for [addr]: quarantine a dirty victim in the
     rename buffer (a full buffer forces an epoch commit first —
     structural hazard → backup), then fetch the newest line image from
     the rename buffer or NVM.  Returns the way and the fill cost,
     grouped (evict ++ fetch) ++ hit like the legacy Cost chain. *)
  let fill addr =
    let cache = t.cache in
    let vi = Cache.victim cache addr in
    let evict_ns, evict_joules =
      if Cache.valid cache vi && Cache.dirty cache vi then begin
        let forced_ns, forced_joules =
          if Pb.count t.rename >= Pb.capacity t.rename then begin
            let c = epoch_commit_cost t in
            epoch_commit t;
            t.stats.Mstats.backup_events <- t.stats.Mstats.backup_events + 1;
            t.stats.Mstats.f.Mstats.backup_joules <-
              t.stats.Mstats.f.Mstats.backup_joules +. c.Cost.joules;
            (c.Cost.ns, c.Cost.joules)
          end
          else (0.0, 0.0)
        in
        Pb.push_from t.rename ~base:(Cache.line_addr cache vi)
          ~src:(Cache.data cache) ~src_pos:(Cache.data_pos cache vi);
        (forced_ns +. nvm_write_ns, forced_joules +. e_nvm_line_write)
      end
      else (0.0, 0.0)
    in
    let base = Layout.line_base addr in
    Cache.install_victim cache vi addr;
    let scanned =
      Pb.search_into t.rename base ~dst:(Cache.data cache)
        ~dst_pos:(Cache.data_pos cache vi)
    in
    let fetch_ns, fetch_joules =
      if scanned > 0 then (lookup_ns, e_lookup)
      else begin
        Nvm.read_line_into t.nvm base ~dst:(Cache.data cache)
          ~dst_pos:(Cache.data_pos cache vi);
        (lookup_ns +. nvm_read_ns, e_lookup +. e_nvm_read)
      end
    in
    (vi, evict_ns +. fetch_ns +. hit_ns, evict_joules +. fetch_joules +. e_hit)
  in
  Exec.nop_region_ops
    {
      Exec.load =
        (fun addr ->
          let li = Cache.find t.cache addr in
          if li <> Cache.no_line then begin
            Cache.record_hit t.cache;
            Cache.touch t.cache li;
            Acc.charge t.acc ~ns:hit_ns ~joules:e_hit;
            Cache.read_word t.cache li addr
          end
          else begin
            Cache.record_miss t.cache;
            let vi, ns, joules = fill addr in
            Acc.charge t.acc ~ns ~joules;
            Cache.read_word t.cache vi addr
          end);
      store =
        (fun addr value ->
          let li = Cache.find t.cache addr in
          if li <> Cache.no_line then begin
            Cache.record_hit t.cache;
            Cache.touch t.cache li;
            Cache.write_word t.cache li addr value;
            Cache.set_dirty t.cache li ~region:(-1);
            Acc.charge t.acc ~ns:(hit_ns +. rename_check_ns)
              ~joules:(e_hit +. e_rename_check)
          end
          else begin
            Cache.record_miss t.cache;
            let vi, ns, joules = fill addr in
            Cache.write_word t.cache vi addr value;
            Cache.set_dirty t.cache vi ~region:(-1);
            Acc.charge t.acc ~ns:(ns +. rename_check_ns)
              ~joules:(joules +. e_rename_check)
          end);
      clwb = (fun _ -> ());
      fence = (fun () -> ());
      region_end = (fun () -> ());
    }

let create cfg prog =
  let nvm = Nvm.create () in
  Sweep_machine.Loader.load nvm prog;
  let detector =
    match cfg.Cfg.detector_override with
    | Some d -> d
    | None ->
      (* Backing up dirty cachelines needs an NVSRAM-class reserve; the
         design then keeps executing below the threshold (its defining
         advantage), gambling that a forced commit lands before death. *)
      Sweep_energy.Detector.jit ~v_backup:3.2 ~v_restore:3.4
  in
  let t =
    {
      cfg;
      prog;
      dec = Sweep_isa.Decoded.compile prog;
      cpu = Cpu.create ~entry:prog.entry;
      nvm;
      cache =
        Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes
          ~assoc:cfg.Cfg.cache_assoc;
      stats = Mstats.create ();
      acc = (let a = Acc.create () in Acc.set_rates a cfg.Cfg.energy; a);
      ops = Exec.null_ops;
      detector;
      rename = Pb.create ~capacity:(max 1 cfg.Cfg.rename_entries);
      shadow = None;
    }
  in
  t.ops <- make_ops t;
  t

let cpu t = t.cpu
let nvm t = t.nvm
let cache t = Some t.cache
let mstats t = t.stats
let acc t = t.acc
let detector t = t.detector
let halted t = t.cpu.Cpu.halted

let step t =
  if t.cfg.Cfg.reference_interp then
    Exec.step_reference t.cpu t.prog t.stats t.ops t.acc
  else Exec.step t.cpu t.dec t.stats t.ops t.acc

let jit_backup_cost t = Some (epoch_commit_cost t)
let commit_jit_backup t ~now_ns =
  epoch_commit t;
  if Sweep_obs.Sink.on () then begin
    let lines =
      match t.shadow with Some { lines; _ } -> List.length lines | None -> 0
    in
    Sweep_obs.Sink.emit ~ns:now_ns (Sweep_obs.Event.Backup_lines { lines })
  end
let continues_after_backup = true

let on_power_failure t ~now_ns:_ =
  Cache.invalidate_all t.cache;
  (* Roll back the open epoch: discard the rename mapping. *)
  Pb.clear t.rename;
  Cpu.reset t.cpu ~entry:t.prog.entry;
  Mstats.reset_region_counters t.stats

let on_reboot t ~now_ns:_ =
  let cost =
    match t.shadow with
    | Some { regs; pc; lines } ->
      Cpu.restore t.cpu (regs, pc);
      List.iter
        (fun saved ->
          let li = Cache.install t.cache saved.base saved.data in
          if saved.dirty then Cache.set_dirty t.cache li ~region:(-1))
        lines;
      Cost.(
        Jit_common.reg_restore (e t)
        ++ Jit_common.lines_restore (e t) ~parallel:t.cfg.Cfg.nvsram_parallel
             (List.length lines))
    | None ->
      Cpu.reset t.cpu ~entry:t.prog.entry;
      Jit_common.reg_restore (e t)
  in
  t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
  t.stats.Mstats.f.Mstats.restore_joules <- t.stats.Mstats.f.Mstats.restore_joules +. cost.Cost.joules;
  cost

(* End of program: commit the open epoch and flush remaining dirty
   lines. *)
let drain t ~now_ns:_ =
  let c = epoch_commit_cost t in
  List.iter
    (fun (base, data) -> Nvm.write_line t.nvm base data)
    (Pb.entries_oldest_first t.rename);
  Pb.clear t.rename;
  let dirty = Cache.dirty_lines t.cache in
  List.iter
    (fun li ->
      Nvm.write_line_from t.nvm (Cache.line_addr t.cache li)
        ~src:(Cache.data t.cache) ~src_pos:(Cache.data_pos t.cache li);
      Cache.clear_dirty t.cache li)
    dirty;
  let n = float_of_int (List.length dirty) in
  Cost.(
    c
    ++ make ~ns:(n *. (e t).E.nvm_write_ns)
         ~joules:(n *. (e t).E.e_nvm_line_write))

type t_alias = t

let packed cfg prog =
  let m =
    (module struct
      type t = t_alias

      let name = name
      let create = create
      let cpu = cpu
      let nvm = nvm
      let cache = cache
      let mstats = mstats
      let acc = acc
      let detector = detector
      let step = step
      let halted = halted
      let jit_backup_cost = jit_backup_cost
      let commit_jit_backup = commit_jit_backup
      let continues_after_backup = continues_after_backup
      let on_power_failure = on_power_failure
      let on_reboot = on_reboot
      let drain = drain
    end : Sweep_machine.Machine_intf.S
      with type t = t_alias)
  in
  Sweep_machine.Machine_intf.Packed (m, create cfg prog)
