module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Acc = Sweep_machine.Exec.Acc
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout

let name = "ReplayCache"

(* Single-field all-float record: flat representation, so mutating [v]
   does not allocate — unlike a mutable float field in the mixed [t]. *)
type fbox = { mutable v : float }

type shadow = {
  s_regs : int array;
  s_pc : int;
  s_replay : (int * int array) list;
      (** Dirty lines whose clwb had not yet executed at backup time:
          store integrity lets recovery replay those stores, which we
          model by reapplying the line images (costed as replay). *)
}

type t = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  dec : Sweep_isa.Decoded.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  acc : Acc.t;
  mutable ops : Exec.mem_ops;
  detector : Sweep_energy.Detector.t;
  pend : floatarray;
      (** completion times of in-flight clwbs, a ring buffer ordered
          oldest first (completion times are monotone); data reaches NVM
          eagerly, timing carried here *)
  mutable p_head : int;
  mutable p_count : int;
  queue_tail : fbox;  (** completion time of the newest clwb *)
  mutable shadow : shadow option;
}

let e t = t.cfg.Cfg.energy

(* Drop clwbs that have completed by [now].  Entries are sorted
   ascending, so this is a prefix drop. *)
(* Ring indices are always in [0, 2*cap): [p_head < cap] and
   [p_count <= cap] are invariants, so a compare-subtract wraps
   identically to [mod] without the hardware divide per queue op. *)
let[@inline] ring_wrap i cap = if i >= cap then i - cap else i

let sync t now =
  let cap = Float.Array.length t.pend in
  while t.p_count > 0 && Float.Array.get t.pend t.p_head <= now do
    t.p_head <- ring_wrap (t.p_head + 1) cap;
    t.p_count <- t.p_count - 1
  done

(* Hot-path variant reading the clock from the accumulator: a float
   argument would be boxed at every call without flambda. *)
let sync_clock t =
  let now = t.acc.Acc.now in
  let cap = Float.Array.length t.pend in
  while t.p_count > 0 && Float.Array.get t.pend t.p_head <= now do
    t.p_head <- ring_wrap (t.p_head + 1) cap;
    t.p_count <- t.p_count - 1
  done

let newest_pending t ~default =
  if t.p_count = 0 then default
  else
    let cap = Float.Array.length t.pend in
    Float.Array.get t.pend (ring_wrap (t.p_head + t.p_count - 1) cap)

let clear_pending t =
  t.p_head <- 0;
  t.p_count <- 0

let make_ops t =
  let e = e t in
  let hit_ns = float_of_int e.E.cache_hit_cycles *. E.cycle_ns e
  and e_hit = e.E.e_cache_access in
  let nvm_read_ns = e.E.nvm_read_ns
  and e_nvm_read = e.E.e_nvm_read
  and nvm_write_ns = e.E.nvm_write_ns
  and e_nvm_line_write = e.E.e_nvm_line_write
  and clwb_drain_ns = e.E.clwb_drain_ns in
  (* Fill the victim way for [addr]; charges (evict ++ read) ++ hit.
     clwb cleans lines right after each store, so dirty victims are rare
     (a store whose clwb was the very last instruction before the miss);
     write them back synchronously. *)
  let fill addr =
    let cache = t.cache in
    let vi = Cache.victim cache addr in
    let dirty = Cache.valid cache vi && Cache.dirty cache vi in
    if dirty then
      Nvm.write_line_from t.nvm (Cache.line_addr cache vi)
        ~src:(Cache.data cache) ~src_pos:(Cache.data_pos cache vi);
    let evict_ns = if dirty then nvm_write_ns else 0.0
    and evict_joules = if dirty then e_nvm_line_write else 0.0 in
    let base = Layout.line_base addr in
    Cache.install_victim cache vi addr;
    Nvm.read_line_into t.nvm base ~dst:(Cache.data cache)
      ~dst_pos:(Cache.data_pos cache vi);
    (* Acc.charge by hand: the call is not inlined, so the computed
       float arguments would be boxed. *)
    let a = t.acc in
    a.Acc.ns <- a.Acc.ns +. (evict_ns +. nvm_read_ns +. hit_ns);
    a.Acc.joules <- a.Acc.joules +. (evict_joules +. e_nvm_read +. e_hit);
    vi
  in
  {
    Exec.load =
      (fun addr ->
        sync_clock t;
        let li = Cache.find t.cache addr in
        if li <> Cache.no_line then begin
          Cache.record_hit t.cache;
          Cache.touch t.cache li;
          Acc.charge t.acc ~ns:hit_ns ~joules:e_hit;
          Cache.read_word t.cache li addr
        end
        else begin
          Cache.record_miss t.cache;
          let li = fill addr in
          Cache.read_word t.cache li addr
        end);
    store =
      (fun addr value ->
        sync_clock t;
        let li = Cache.find t.cache addr in
        if li <> Cache.no_line then begin
          Cache.record_hit t.cache;
          Cache.touch t.cache li;
          Cache.write_word t.cache li addr value;
          Cache.set_dirty t.cache li ~region:(-1);
          Acc.charge t.acc ~ns:hit_ns ~joules:e_hit
        end
        else begin
          Cache.record_miss t.cache;
          let li = fill addr in
          Cache.write_word t.cache li addr value;
          Cache.set_dirty t.cache li ~region:(-1)
        end);
    clwb =
      (* Enqueue an asynchronous line write-back.  NVM contents update
         eagerly (values are identical either way); the completion time
         models the write bandwidth, and a full queue stalls the
         pipeline. *)
      (fun addr ->
        sync_clock t;
        let now0 = t.acc.Acc.now in
        let base = Layout.line_base addr in
        let stall =
          if t.p_count >= t.cfg.Cfg.replay_queue then
            if t.p_count > 0 then begin
              let oldest = Float.Array.get t.pend t.p_head in
              t.p_head <- ring_wrap (t.p_head + 1) (Float.Array.length t.pend);
              t.p_count <- t.p_count - 1;
              let d = oldest -. now0 in
              if d > 0.0 then d else 0.0
            end
            else 0.0
          else 0.0
        in
        let now = now0 +. stall in
        let li = Cache.find t.cache base in
        if li <> Cache.no_line then begin
          Nvm.write_line_from t.nvm base ~src:(Cache.data t.cache)
            ~src_pos:(Cache.data_pos t.cache li);
          Cache.clear_dirty t.cache li
        end;
        (* else: the line was evicted between the store and its clwb —
           cannot happen with adjacent instructions, but stay total. *)
        let tail = t.queue_tail.v in
        let done_at = (if now >= tail then now else tail) +. clwb_drain_ns in
        t.queue_tail.v <- done_at;
        (* push_pending inlined: a float argument would box per clwb. *)
        let cap = Float.Array.length t.pend in
        Float.Array.set t.pend (ring_wrap (t.p_head + t.p_count) cap) done_at;
        t.p_count <- t.p_count + 1;
        let a = t.acc in
        a.Acc.ns <- a.Acc.ns +. stall;
        a.Acc.joules <- a.Acc.joules +. e_nvm_line_write);
    fence =
      (fun () ->
        sync_clock t;
        let now = t.acc.Acc.now in
        (* newest_pending, inlined: float argument/return would box. *)
        let target =
          if t.p_count = 0 then now
          else
            Float.Array.get t.pend
              (ring_wrap (t.p_head + t.p_count - 1) (Float.Array.length t.pend))
        in
        let target = if target > now then target else now in
        let stall = target -. now in
        clear_pending t;
        t.stats.Mstats.f.Mstats.persistence_ns <-
          t.stats.Mstats.f.Mstats.persistence_ns +. stall;
        t.stats.Mstats.f.Mstats.wait_ns <-
          t.stats.Mstats.f.Mstats.wait_ns +. stall;
        let a = t.acc in
        a.Acc.ns <- a.Acc.ns +. stall);
    region_end = (fun () -> ());
  }

let create cfg prog =
  let nvm = Nvm.create () in
  Sweep_machine.Loader.load nvm prog;
  let detector =
    match cfg.Cfg.detector_override with
    | Some d -> d
    | None -> Sweep_energy.Detector.jit ~v_backup:2.9 ~v_restore:3.2
  in
  let t =
    {
      cfg;
      prog;
      dec = Sweep_isa.Decoded.compile prog;
      cpu = Cpu.create ~entry:prog.entry;
      nvm;
      cache =
        Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes
          ~assoc:cfg.Cfg.cache_assoc;
      stats = Mstats.create ();
      acc = (let a = Acc.create () in Acc.set_rates a cfg.Cfg.energy; a);
      ops = Exec.null_ops;
      detector;
      pend = Float.Array.make (max 1 cfg.Cfg.replay_queue) 0.0;
      p_head = 0;
      p_count = 0;
      queue_tail = { v = 0.0 };
      shadow = None;
    }
  in
  t.ops <- make_ops t;
  t

let cpu t = t.cpu
let nvm t = t.nvm
let cache t = Some t.cache
let mstats t = t.stats
let acc t = t.acc
let detector t = t.detector
let halted t = t.cpu.Cpu.halted

let step t =
  if t.cfg.Cfg.reference_interp then
    Exec.step_reference t.cpu t.prog t.stats t.ops t.acc
  else Exec.step t.cpu t.dec t.stats t.ops t.acc

let jit_backup_cost t = Some (Jit_common.reg_backup (e t))

let commit_jit_backup t ~now_ns =
  (* Stores whose clwb is still in flight at backup time will be
     "replayed" at recovery: count them now.  Dirty lines are stores
     whose clwb instruction had not even executed yet — store integrity
     covers them, so they join the replay set. *)
  sync t now_ns;
  t.stats.Mstats.replayed_stores <-
    t.stats.Mstats.replayed_stores + t.p_count;
  let s_replay =
    List.map
      (fun li -> (Cache.line_addr t.cache li, Cache.copy_line_data t.cache li))
      (Cache.dirty_lines t.cache)
  in
  let s_regs, s_pc = Cpu.snapshot t.cpu in
  t.shadow <- Some { s_regs; s_pc; s_replay }

let continues_after_backup = false

let on_power_failure t ~now_ns =
  sync t now_ns;
  Cache.invalidate_all t.cache;
  Cpu.reset t.cpu ~entry:t.prog.entry;
  Mstats.reset_region_counters t.stats

let on_reboot t ~now_ns =
  let replayed = ref t.p_count in
  clear_pending t;
  t.queue_tail.v <- 0.0;
  (match t.shadow with
  | Some { s_regs; s_pc; s_replay } ->
    Cpu.restore t.cpu (s_regs, s_pc);
    List.iter
      (fun (base, data) ->
        Nvm.write_line t.nvm base data;
        incr replayed)
      s_replay
  | None -> Cpu.reset t.cpu ~entry:t.prog.entry);
  (* Replay runs the recovery block: one NVM read (operands) and one NVM
     write per unpersisted store, sequentially (§2.2: slow recovery). *)
  let n = float_of_int !replayed in
  let cost =
    Cost.(
      Jit_common.reg_restore (e t)
      ++ make
           ~ns:(n *. ((e t).E.nvm_read_ns +. (e t).E.nvm_write_ns))
           ~joules:(n *. ((e t).E.e_nvm_read +. (e t).E.e_nvm_line_write)))
  in
  t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
  t.stats.Mstats.f.Mstats.restore_joules <- t.stats.Mstats.f.Mstats.restore_joules +. cost.Cost.joules;
  if Sweep_obs.Sink.on () then
    Sweep_obs.Sink.emit ~ns:now_ns
      (Sweep_obs.Event.Replay { stores = !replayed });
  cost

let drain t ~now_ns =
  let target = newest_pending t ~default:now_ns in
  let target = if target > now_ns then target else now_ns in
  clear_pending t;
  (* Any still-dirty lines (stores without a reached clwb cannot exist in
     Replay-mode programs, but examples may run Plain code here). *)
  let dirty = Cache.dirty_lines t.cache in
  List.iter
    (fun li ->
      Nvm.write_line_from t.nvm (Cache.line_addr t.cache li)
        ~src:(Cache.data t.cache) ~src_pos:(Cache.data_pos t.cache li);
      Cache.clear_dirty t.cache li)
    dirty;
  let n = float_of_int (List.length dirty) in
  Cost.make
    ~ns:(target -. now_ns +. (n *. (e t).E.nvm_write_ns))
    ~joules:(n *. (e t).E.e_nvm_line_write)

type t_alias = t

let packed cfg prog =
  let m =
    (module struct
      type t = t_alias

      let name = name
      let create = create
      let cpu = cpu
      let nvm = nvm
      let cache = cache
      let mstats = mstats
      let acc = acc
      let detector = detector
      let step = step
      let halted = halted
      let jit_backup_cost = jit_backup_cost
      let commit_jit_backup = commit_jit_backup
      let continues_after_backup = continues_after_backup
      let on_power_failure = on_power_failure
      let on_reboot = on_reboot
      let drain = drain
    end : Sweep_machine.Machine_intf.S
      with type t = t_alias)
  in
  Sweep_machine.Machine_intf.Packed (m, create cfg prog)
