module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout

let name = "ReplayCache"

type t = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  detector : Sweep_energy.Detector.t;
  mutable pending : float list;
      (** completion times of in-flight clwbs, oldest first; data reaches
          NVM eagerly, timing carried here *)
  mutable queue_tail : float;  (** completion time of the newest clwb *)
  mutable shadow : shadow option;
}

and shadow = {
  s_regs : int array;
  s_pc : int;
  s_replay : (int * int array) list;
      (** Dirty lines whose clwb had not yet executed at backup time:
          store integrity lets recovery replay those stores, which we
          model by reapplying the line images (costed as replay). *)
}

let create cfg prog =
  let nvm = Nvm.create () in
  Sweep_machine.Loader.load nvm prog;
  let detector =
    match cfg.Cfg.detector_override with
    | Some d -> d
    | None -> Sweep_energy.Detector.jit ~v_backup:2.9 ~v_restore:3.2
  in
  {
    cfg;
    prog;
    cpu = Cpu.create ~entry:prog.entry;
    nvm;
    cache =
      Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes ~assoc:cfg.Cfg.cache_assoc;
    stats = Mstats.create ();
    detector;
    pending = [];
    queue_tail = 0.0;
    shadow = None;
  }

let cpu t = t.cpu
let nvm t = t.nvm
let cache t = Some t.cache
let mstats t = t.stats
let detector t = t.detector
let halted t = t.cpu.Cpu.halted
let e t = t.cfg.Cfg.energy

let hit_cost t =
  Cost.make
    ~ns:(float_of_int (e t).E.cache_hit_cycles *. E.cycle_ns (e t))
    ~joules:(e t).E.e_cache_access

let sync t now = t.pending <- List.filter (fun done_at -> done_at > now) t.pending

(* Stall-time power is charged uniformly by the executor. *)
let stall_cost _ ns = Cost.make ~ns ~joules:0.0

let fill t addr =
  let victim = Cache.victim t.cache addr in
  let evict_cost =
    (* clwb cleans lines right after each store, so dirty victims are
       rare (a store whose clwb was the very last instruction before the
       miss); write them back synchronously. *)
    if victim.Cache.valid && victim.Cache.dirty then begin
      Nvm.write_line t.nvm victim.Cache.base victim.Cache.data;
      Cost.make ~ns:(e t).E.nvm_write_ns ~joules:(e t).E.e_nvm_line_write
    end
    else Cost.zero
  in
  let base = Layout.line_base addr in
  let data = Nvm.read_line t.nvm base in
  let line = Cache.install t.cache addr data in
  ( line,
    Cost.(
      evict_cost
      ++ make ~ns:(e t).E.nvm_read_ns ~joules:(e t).E.e_nvm_read
      ++ hit_cost t) )

let load t addr now =
  sync t now;
  match Cache.find t.cache addr with
  | Some line ->
    Cache.record_hit t.cache;
    Cache.touch t.cache line;
    (Cache.read_word line addr, hit_cost t)
  | None ->
    Cache.record_miss t.cache;
    let line, cost = fill t addr in
    (Cache.read_word line addr, cost)

let store t addr value now =
  sync t now;
  match Cache.find t.cache addr with
  | Some line ->
    Cache.record_hit t.cache;
    Cache.touch t.cache line;
    Cache.write_word line addr value;
    line.Cache.dirty <- true;
    hit_cost t
  | None ->
    Cache.record_miss t.cache;
    let line, cost = fill t addr in
    Cache.write_word line addr value;
    line.Cache.dirty <- true;
    cost

(* Enqueue an asynchronous line write-back.  NVM contents update eagerly
   (values are identical either way); the completion time models the
   write bandwidth, and a full queue stalls the pipeline. *)
let clwb t addr now =
  sync t now;
  let base = Layout.line_base addr in
  let stall =
    if List.length t.pending >= t.cfg.Cfg.replay_queue then begin
      match t.pending with
      | oldest :: rest ->
        t.pending <- rest;
        max 0.0 (oldest -. now)
      | [] -> 0.0
    end
    else 0.0
  in
  let now = now +. stall in
  (match Cache.find t.cache base with
  | Some line ->
    Nvm.write_line t.nvm base line.Cache.data;
    line.Cache.dirty <- false
  | None ->
    (* The line was evicted between the store and its clwb — cannot
       happen with adjacent instructions, but stay total. *)
    ());
  let done_at = max now t.queue_tail +. (e t).E.clwb_drain_ns in
  t.queue_tail <- done_at;
  t.pending <- t.pending @ [ done_at ];
  Cost.(stall_cost t stall ++ make ~ns:0.0 ~joules:(e t).E.e_nvm_line_write)

let fence t now =
  sync t now;
  let target = List.fold_left max now t.pending in
  let stall = target -. now in
  t.pending <- [];
  t.stats.Mstats.persistence_ns <- t.stats.Mstats.persistence_ns +. stall;
  t.stats.Mstats.wait_ns <- t.stats.Mstats.wait_ns +. stall;
  stall_cost t stall

let mem_ops t =
  {
    Exec.load = (fun addr now -> load t addr now);
    store = (fun addr value now -> store t addr value now);
    clwb = (fun addr now -> clwb t addr now);
    fence = (fun now -> fence t now);
    region_end = (fun _ -> Cost.zero);
  }

let step t ~now_ns = Exec.step t.cfg t.cpu t.prog t.stats (mem_ops t) ~now_ns

let jit_backup_cost t = Some (Jit_common.reg_backup (e t))

let commit_jit_backup t ~now_ns =
  (* Stores whose clwb is still in flight at backup time will be
     "replayed" at recovery: count them now.  Dirty lines are stores
     whose clwb instruction had not even executed yet — store integrity
     covers them, so they join the replay set. *)
  sync t now_ns;
  t.stats.Mstats.replayed_stores <-
    t.stats.Mstats.replayed_stores + List.length t.pending;
  let s_replay =
    List.map
      (fun line -> (line.Cache.base, Array.copy line.Cache.data))
      (Cache.dirty_lines t.cache)
  in
  let s_regs, s_pc = Cpu.snapshot t.cpu in
  t.shadow <- Some { s_regs; s_pc; s_replay }

let continues_after_backup = false

let on_power_failure t ~now_ns =
  sync t now_ns;
  Cache.invalidate_all t.cache;
  Cpu.reset t.cpu ~entry:t.prog.entry;
  Mstats.reset_region_counters t.stats

let on_reboot t ~now_ns =
  let replayed = ref (List.length t.pending) in
  t.pending <- [];
  t.queue_tail <- 0.0;
  (match t.shadow with
  | Some { s_regs; s_pc; s_replay } ->
    Cpu.restore t.cpu (s_regs, s_pc);
    List.iter
      (fun (base, data) ->
        Nvm.write_line t.nvm base data;
        incr replayed)
      s_replay
  | None -> Cpu.reset t.cpu ~entry:t.prog.entry);
  (* Replay runs the recovery block: one NVM read (operands) and one NVM
     write per unpersisted store, sequentially (§2.2: slow recovery). *)
  let n = float_of_int !replayed in
  let cost =
    Cost.(
      Jit_common.reg_restore (e t)
      ++ make
           ~ns:(n *. ((e t).E.nvm_read_ns +. (e t).E.nvm_write_ns))
           ~joules:(n *. ((e t).E.e_nvm_read +. (e t).E.e_nvm_line_write)))
  in
  t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
  t.stats.Mstats.restore_joules <- t.stats.Mstats.restore_joules +. cost.Cost.joules;
  if Sweep_obs.Sink.on () then
    Sweep_obs.Sink.emit ~ns:now_ns
      (Sweep_obs.Event.Replay { stores = !replayed });
  cost

let drain t ~now_ns =
  let target = List.fold_left max now_ns t.pending in
  t.pending <- [];
  (* Any still-dirty lines (stores without a reached clwb cannot exist in
     Replay-mode programs, but examples may run Plain code here). *)
  let dirty = Cache.dirty_lines t.cache in
  List.iter
    (fun line ->
      Nvm.write_line t.nvm line.Cache.base line.Cache.data;
      line.Cache.dirty <- false)
    dirty;
  let n = float_of_int (List.length dirty) in
  Cost.make
    ~ns:(target -. now_ns +. (n *. (e t).E.nvm_write_ns))
    ~joules:(n *. (e t).E.e_nvm_line_write)

type t_alias = t

let packed cfg prog =
  let m =
    (module struct
      type t = t_alias

      let name = name
      let create = create
      let cpu = cpu
      let nvm = nvm
      let cache = cache
      let mstats = mstats
      let detector = detector
      let step = step
      let halted = halted
      let jit_backup_cost = jit_backup_cost
      let commit_jit_backup = commit_jit_backup
      let continues_after_backup = continues_after_backup
      let on_power_failure = on_power_failure
      let on_reboot = on_reboot
      let drain = drain
    end : Sweep_machine.Machine_intf.S
      with type t = t_alias)
  in
  Sweep_machine.Machine_intf.Packed (m, create cfg prog)
