module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Acc = Sweep_machine.Exec.Acc
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout

type saved_line = { base : int; data : int array; dirty : bool }

type shadow = {
  regs : int array;
  pc : int;
  lines : saved_line list;
}

type state = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  dec : Sweep_isa.Decoded.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  acc : Acc.t;
  mutable ops : Exec.mem_ops;
  detector : Sweep_energy.Detector.t;
  mutable shadow : shadow option;
}

let e (t : state) = t.cfg.Cfg.energy

(* Standard write-back memory path (shared by NVSRAM and NVSRAM-E —
   only the backup scope differs): dirty victims go straight to their
   NVM home (no redo buffer here — crash consistency comes from the
   JIT backup of the whole cache). *)
let make_ops (t : state) =
  let e = e t in
  let hit_ns = float_of_int e.E.cache_hit_cycles *. E.cycle_ns e
  and e_hit = e.E.e_cache_access in
  let nvm_read_ns = e.E.nvm_read_ns
  and e_nvm_read = e.E.e_nvm_read
  and nvm_write_ns = e.E.nvm_write_ns
  and e_nvm_line_write = e.E.e_nvm_line_write in
  (* Fill the victim way for [addr]; charges (evict ++ read) ++ hit with
     the same grouping as the legacy Cost chain. *)
  let fill addr =
    let cache = t.cache in
    let vi = Cache.victim cache addr in
    let evict_ns, evict_joules =
      if Cache.valid cache vi && Cache.dirty cache vi then begin
        Nvm.write_line_from t.nvm (Cache.line_addr cache vi)
          ~src:(Cache.data cache) ~src_pos:(Cache.data_pos cache vi);
        (nvm_write_ns, e_nvm_line_write)
      end
      else (0.0, 0.0)
    in
    let base = Layout.line_base addr in
    Cache.install_victim cache vi addr;
    Nvm.read_line_into t.nvm base ~dst:(Cache.data cache)
      ~dst_pos:(Cache.data_pos cache vi);
    Acc.charge t.acc
      ~ns:(evict_ns +. nvm_read_ns +. hit_ns)
      ~joules:(evict_joules +. e_nvm_read +. e_hit);
    vi
  in
  Exec.nop_region_ops
    {
      Exec.load =
        (fun addr ->
          let li = Cache.find t.cache addr in
          if li <> Cache.no_line then begin
            Cache.record_hit t.cache;
            Cache.touch t.cache li;
            Acc.charge t.acc ~ns:hit_ns ~joules:e_hit;
            Cache.read_word t.cache li addr
          end
          else begin
            Cache.record_miss t.cache;
            let li = fill addr in
            Cache.read_word t.cache li addr
          end);
      store =
        (fun addr value ->
          let li = Cache.find t.cache addr in
          if li <> Cache.no_line then begin
            Cache.record_hit t.cache;
            Cache.touch t.cache li;
            Cache.write_word t.cache li addr value;
            Cache.set_dirty t.cache li ~region:(-1);
            Acc.charge t.acc ~ns:hit_ns ~joules:e_hit
          end
          else begin
            Cache.record_miss t.cache;
            let li = fill addr in
            Cache.write_word t.cache li addr value;
            Cache.set_dirty t.cache li ~region:(-1)
          end);
      clwb = (fun _ -> ());
      fence = (fun () -> ());
      region_end = (fun () -> ());
    }

module Make (P : sig
  val name : string
  val entire : bool
end) =
struct
  let name = P.name

  type t = state

  (* The backup threshold must reserve enough energy for the worst-case
     backup (§2.2): dirty-only backup reserves for a mostly-dirty cache
     at 3.2 V; entire-cache backup needs a deeper reserve, hence
     NVSRAM-E's higher thresholds. *)
  let v_backup, v_restore = if P.entire then (3.35, 3.45) else (3.2, 3.4)

  let create cfg prog =
    let nvm = Nvm.create () in
    Sweep_machine.Loader.load nvm prog;
    let detector =
      match cfg.Cfg.detector_override with
      | Some d -> d
      | None -> Sweep_energy.Detector.jit ~v_backup ~v_restore
    in
    let t =
      {
        cfg;
        prog;
        dec = Sweep_isa.Decoded.compile prog;
        cpu = Cpu.create ~entry:prog.entry;
        nvm;
        cache =
          Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes
            ~assoc:cfg.Cfg.cache_assoc;
        stats = Mstats.create ();
        acc = (let a = Acc.create () in Acc.set_rates a cfg.Cfg.energy; a);
        ops = Exec.null_ops;
        detector;
        shadow = None;
      }
    in
    t.ops <- make_ops t;
    t

  let cpu t = t.cpu
  let nvm t = t.nvm
  let cache t = Some t.cache
  let mstats t = t.stats
  let acc (t : t) = t.acc
  let detector t = t.detector
  let halted t = t.cpu.Cpu.halted
  let e = e

  let step (t : t) =
    if t.cfg.Cfg.reference_interp then
      Exec.step_reference t.cpu t.prog t.stats t.ops t.acc
    else Exec.step t.cpu t.dec t.stats t.ops t.acc

  let lines_to_save t =
    let acc = ref [] in
    Cache.iter_lines t.cache (fun li ->
        if Cache.valid t.cache li && (P.entire || Cache.dirty t.cache li) then
          acc :=
            {
              base = Cache.line_addr t.cache li;
              data = Cache.copy_line_data t.cache li;
              dirty = Cache.dirty t.cache li;
            }
            :: !acc);
    !acc

  let jit_backup_cost t =
    let n = List.length (lines_to_save t) in
    Some
      Cost.(
        Jit_common.reg_backup (e t)
        ++ Jit_common.lines_backup (e t) ~parallel:t.cfg.Cfg.nvsram_parallel n)

  let commit_jit_backup t ~now_ns =
    let regs, pc = Cpu.snapshot t.cpu in
    let lines = lines_to_save t in
    (* The nonvolatile counterpart is NVM: its backup writes count. *)
    Nvm.add_external_writes t.nvm ~events:(List.length lines)
      ~bytes:(List.length lines * Layout.line_bytes);
    if Sweep_obs.Sink.on () then
      Sweep_obs.Sink.emit ~ns:now_ns
        (Sweep_obs.Event.Backup_lines { lines = List.length lines });
    t.shadow <- Some { regs; pc; lines }

  let continues_after_backup = false

  let on_power_failure t ~now_ns:_ =
    Cache.invalidate_all t.cache;
    Cpu.reset t.cpu ~entry:t.prog.entry;
    Mstats.reset_region_counters t.stats

  let on_reboot t ~now_ns =
    (* Mutation for the differential checker: the shadow SRAM restores
       the CPU but "loses" the checkpointed cache image.  Dirty lines
       that existed only in the cache at backup time are gone — their
       stores silently vanish, which the final-globals check must
       catch.  (A full cold restart would be idempotent for most
       workloads and therefore undetectable.) *)
    let drop_lines = t.cfg.Cfg.faults.Sweep_machine.Fault_model.skip_restore in
    if drop_lines && Sweep_obs.Sink.on () then
      Sweep_obs.Sink.emit ~ns:now_ns
        (Sweep_obs.Event.Mark
           { name = "mutation: skip restore"; cat = Sweep_obs.Event.Fault });
    let cost =
      match t.shadow with
      | Some { regs; pc; lines } ->
        Cpu.restore t.cpu (regs, pc);
        if not drop_lines then
          List.iter
            (fun saved ->
              let li = Cache.install t.cache saved.base saved.data in
              if saved.dirty then Cache.set_dirty t.cache li ~region:(-1))
            lines;
        Cost.(
          Jit_common.reg_restore (e t)
          ++ Jit_common.lines_restore (e t) ~parallel:t.cfg.Cfg.nvsram_parallel
               (List.length lines))
      | None ->
        Cpu.reset t.cpu ~entry:t.prog.entry;
        Jit_common.reg_restore (e t)
    in
    t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
    t.stats.Mstats.f.Mstats.restore_joules <-
      t.stats.Mstats.f.Mstats.restore_joules +. cost.Cost.joules;
    cost

  (* End of program: write back what is still dirty so the final NVM
     image is complete. *)
  let drain t ~now_ns:_ =
    let dirty = Cache.dirty_lines t.cache in
    List.iter
      (fun li ->
        Nvm.write_line_from t.nvm (Cache.line_addr t.cache li)
          ~src:(Cache.data t.cache) ~src_pos:(Cache.data_pos t.cache li);
        Cache.clear_dirty t.cache li)
      dirty;
    let n = float_of_int (List.length dirty) in
    Cost.make ~ns:(n *. (e t).E.nvm_write_ns)
      ~joules:(n *. (e t).E.e_nvm_line_write)

  let packed cfg prog =
    let m =
      (module struct
        type nonrec t = t

        let name = name
        let create = create
        let cpu = cpu
        let nvm = nvm
        let cache = cache
        let mstats = mstats
        let acc = acc
        let detector = detector
        let step = step
        let halted = halted
        let jit_backup_cost = jit_backup_cost
        let commit_jit_backup = commit_jit_backup
        let continues_after_backup = continues_after_backup
        let on_power_failure = on_power_failure
        let on_reboot = on_reboot
        let drain = drain
      end : Sweep_machine.Machine_intf.S
        with type t = t)
    in
    Sweep_machine.Machine_intf.Packed (m, create cfg prog)
end

module Dirty = Make (struct
  let name = "NVSRAM"
  let entire = false
end)

module Entire = Make (struct
  let name = "NVSRAM-E"
  let entire = true
end)