module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout

type saved_line = { base : int; data : int array; dirty : bool }

type shadow = {
  regs : int array;
  pc : int;
  lines : saved_line list;
}

type state = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  detector : Sweep_energy.Detector.t;
  mutable shadow : shadow option;
}

module Make (P : sig
  val name : string
  val entire : bool
end) =
struct
  let name = P.name

  type t = state

  (* The backup threshold must reserve enough energy for the worst-case
     backup (§2.2): dirty-only backup reserves for a mostly-dirty cache
     at 3.2 V; entire-cache backup needs a deeper reserve, hence
     NVSRAM-E's higher thresholds. *)
  let v_backup, v_restore = if P.entire then (3.35, 3.45) else (3.2, 3.4)

  let create cfg prog =
    let nvm = Nvm.create () in
    Sweep_machine.Loader.load nvm prog;
    let detector =
      match cfg.Cfg.detector_override with
      | Some d -> d
      | None -> Sweep_energy.Detector.jit ~v_backup ~v_restore
    in
    {
      cfg;
      prog;
      cpu = Cpu.create ~entry:prog.entry;
      nvm;
      cache =
        Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes
          ~assoc:cfg.Cfg.cache_assoc;
      stats = Mstats.create ();
      detector;
      shadow = None;
    }

  let cpu t = t.cpu
  let nvm t = t.nvm
  let cache t = Some t.cache
  let mstats t = t.stats
  let detector t = t.detector
  let halted t = t.cpu.Cpu.halted
  let e t = t.cfg.Cfg.energy

  let hit_cost t =
    Cost.make
      ~ns:(float_of_int (e t).E.cache_hit_cycles *. E.cycle_ns (e t))
      ~joules:(e t).E.e_cache_access

  (* Standard write-back miss handling: dirty victims go straight to
     their NVM home (no redo buffer here — crash consistency comes from
     the JIT backup of the whole cache). *)
  let fill t addr =
    let victim = Cache.victim t.cache addr in
    let evict_cost =
      if victim.Cache.valid && victim.Cache.dirty then begin
        Nvm.write_line t.nvm victim.Cache.base victim.Cache.data;
        Cost.make ~ns:(e t).E.nvm_write_ns ~joules:(e t).E.e_nvm_line_write
      end
      else Cost.zero
    in
    let base = Layout.line_base addr in
    let data = Nvm.read_line t.nvm base in
    let line = Cache.install t.cache addr data in
    ( line,
      Cost.(
        evict_cost
        ++ make ~ns:(e t).E.nvm_read_ns ~joules:(e t).E.e_nvm_read
        ++ hit_cost t) )

  let load t addr =
    match Cache.find t.cache addr with
    | Some line ->
      Cache.record_hit t.cache;
      Cache.touch t.cache line;
      (Cache.read_word line addr, hit_cost t)
    | None ->
      Cache.record_miss t.cache;
      let line, cost = fill t addr in
      (Cache.read_word line addr, cost)

  let store t addr value =
    match Cache.find t.cache addr with
    | Some line ->
      Cache.record_hit t.cache;
      Cache.touch t.cache line;
      Cache.write_word line addr value;
      line.Cache.dirty <- true;
      hit_cost t
    | None ->
      Cache.record_miss t.cache;
      let line, cost = fill t addr in
      Cache.write_word line addr value;
      line.Cache.dirty <- true;
      cost

  let mem_ops t =
    Exec.nop_region_ops
      {
        Exec.load = (fun addr _ -> load t addr);
        store = (fun addr value _ -> store t addr value);
        clwb = (fun _ _ -> Cost.zero);
        fence = (fun _ -> Cost.zero);
        region_end = (fun _ -> Cost.zero);
      }

  let step t ~now_ns = Exec.step t.cfg t.cpu t.prog t.stats (mem_ops t) ~now_ns

  let lines_to_save t =
    let acc = ref [] in
    Cache.iter_lines t.cache (fun line ->
        if line.Cache.valid && (P.entire || line.Cache.dirty) then
          acc :=
            {
              base = line.Cache.base;
              data = Array.copy line.Cache.data;
              dirty = line.Cache.dirty;
            }
            :: !acc);
    !acc

  let jit_backup_cost t =
    let n = List.length (lines_to_save t) in
    Some
      Cost.(
        Jit_common.reg_backup (e t)
        ++ Jit_common.lines_backup (e t) ~parallel:t.cfg.Cfg.nvsram_parallel n)

  let commit_jit_backup t ~now_ns =
    let regs, pc = Cpu.snapshot t.cpu in
    let lines = lines_to_save t in
    (* The nonvolatile counterpart is NVM: its backup writes count. *)
    Nvm.add_external_writes t.nvm ~events:(List.length lines)
      ~bytes:(List.length lines * Layout.line_bytes);
    if Sweep_obs.Sink.on () then
      Sweep_obs.Sink.emit ~ns:now_ns
        (Sweep_obs.Event.Backup_lines { lines = List.length lines });
    t.shadow <- Some { regs; pc; lines }

  let continues_after_backup = false

  let on_power_failure t ~now_ns:_ =
    Cache.invalidate_all t.cache;
    Cpu.reset t.cpu ~entry:t.prog.entry;
    Mstats.reset_region_counters t.stats

  let on_reboot t ~now_ns =
    (* Mutation for the differential checker: the shadow SRAM restores
       the CPU but "loses" the checkpointed cache image.  Dirty lines
       that existed only in the cache at backup time are gone — their
       stores silently vanish, which the final-globals check must
       catch.  (A full cold restart would be idempotent for most
       workloads and therefore undetectable.) *)
    let drop_lines = t.cfg.Cfg.faults.Sweep_machine.Fault_model.skip_restore in
    if drop_lines && Sweep_obs.Sink.on () then
      Sweep_obs.Sink.emit ~ns:now_ns
        (Sweep_obs.Event.Mark
           { name = "mutation: skip restore"; cat = Sweep_obs.Event.Fault });
    let cost =
      match t.shadow with
      | Some { regs; pc; lines } ->
        Cpu.restore t.cpu (regs, pc);
        if not drop_lines then
          List.iter
            (fun saved ->
              let line = Cache.install t.cache saved.base saved.data in
              line.Cache.dirty <- saved.dirty)
            lines;
        Cost.(
          Jit_common.reg_restore (e t)
          ++ Jit_common.lines_restore (e t) ~parallel:t.cfg.Cfg.nvsram_parallel
               (List.length lines))
      | None ->
        Cpu.reset t.cpu ~entry:t.prog.entry;
        Jit_common.reg_restore (e t)
    in
    t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
    t.stats.Mstats.restore_joules <-
      t.stats.Mstats.restore_joules +. cost.Cost.joules;
    cost

  (* End of program: write back what is still dirty so the final NVM
     image is complete. *)
  let drain t ~now_ns:_ =
    let dirty = Cache.dirty_lines t.cache in
    List.iter
      (fun line ->
        Nvm.write_line t.nvm line.Cache.base line.Cache.data;
        line.Cache.dirty <- false)
      dirty;
    let n = float_of_int (List.length dirty) in
    Cost.make ~ns:(n *. (e t).E.nvm_write_ns)
      ~joules:(n *. (e t).E.e_nvm_line_write)

  let packed cfg prog =
    let m =
      (module struct
        type nonrec t = t

        let name = name
        let create = create
        let cpu = cpu
        let nvm = nvm
        let cache = cache
        let mstats = mstats
        let detector = detector
        let step = step
        let halted = halted
        let jit_backup_cost = jit_backup_cost
        let commit_jit_backup = commit_jit_backup
        let continues_after_backup = continues_after_backup
        let on_power_failure = on_power_failure
        let on_reboot = on_reboot
        let drain = drain
      end : Sweep_machine.Machine_intf.S
        with type t = t)
    in
    Sweep_machine.Machine_intf.Packed (m, create cfg prog)
end

module Dirty = Make (struct
  let name = "NVSRAM"
  let entire = false
end)

module Entire = Make (struct
  let name = "NVSRAM-E"
  let entire = true
end)
