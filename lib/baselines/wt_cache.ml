module Cfg = Sweep_machine.Config
module Cost = Sweep_machine.Cost
module Cpu = Sweep_machine.Cpu
module Exec = Sweep_machine.Exec
module Acc = Sweep_machine.Exec.Acc
module Mstats = Sweep_machine.Mstats
module Nvm = Sweep_mem.Nvm
module Cache = Sweep_mem.Cache
module E = Sweep_energy.Energy_config
module Layout = Sweep_isa.Layout

let name = "WT-VCache"

type t = {
  cfg : Cfg.t;
  prog : Sweep_isa.Program.t;
  dec : Sweep_isa.Decoded.t;
  cpu : Cpu.t;
  nvm : Nvm.t;
  cache : Cache.t;
  stats : Mstats.t;
  acc : Acc.t;
  mutable ops : Exec.mem_ops;
  detector : Sweep_energy.Detector.t;
  mutable shadow : (int array * int) option;
}

let e t = t.cfg.Cfg.energy

let make_ops t =
  let e = e t in
  let hit_ns = float_of_int e.E.cache_hit_cycles *. E.cycle_ns e
  and e_hit = e.E.e_cache_access in
  let miss_ns = e.E.nvm_read_ns +. hit_ns
  and e_miss = e.E.e_nvm_read +. e_hit in
  let nvm_write_ns = e.E.nvm_write_ns
  and e_nvm_write = e.E.e_nvm_write in
  Exec.nop_region_ops
    {
      Exec.load =
        (fun addr ->
          let li = Cache.find t.cache addr in
          if li <> Cache.no_line then begin
            Cache.record_hit t.cache;
            Cache.touch t.cache li;
            Acc.charge t.acc ~ns:hit_ns ~joules:e_hit;
            Cache.read_word t.cache li addr
          end
          else begin
            Cache.record_miss t.cache;
            (* Write-through lines are never dirty, so eviction is
               silent. *)
            let base = Layout.line_base addr in
            let vi = Cache.victim t.cache addr in
            Cache.install_victim t.cache vi addr;
            Nvm.read_line_into t.nvm base ~dst:(Cache.data t.cache)
              ~dst_pos:(Cache.data_pos t.cache vi);
            Acc.charge t.acc ~ns:miss_ns ~joules:e_miss;
            Cache.read_word t.cache vi addr
          end);
      store =
        (fun addr value ->
          (* Write-through, no-write-allocate: update the line if
             present, and always write NVM synchronously. *)
          let li = Cache.find t.cache addr in
          if li <> Cache.no_line then begin
            Cache.record_hit t.cache;
            Cache.touch t.cache li;
            Cache.write_word t.cache li addr value
          end
          else Cache.record_miss t.cache;
          Nvm.write_word t.nvm addr value;
          Acc.charge t.acc ~ns:nvm_write_ns ~joules:e_nvm_write);
      clwb = (fun _ -> ());
      fence = (fun () -> ());
      region_end = (fun () -> ());
    }

let create cfg prog =
  let nvm = Nvm.create () in
  Sweep_machine.Loader.load nvm prog;
  let detector =
    match cfg.Cfg.detector_override with
    | Some d -> d
    | None -> Sweep_energy.Detector.jit ~v_backup:2.9 ~v_restore:3.2
  in
  let t =
    {
      cfg;
      prog;
      dec = Sweep_isa.Decoded.compile prog;
      cpu = Cpu.create ~entry:prog.entry;
      nvm;
      cache =
        Cache.create ~size_bytes:cfg.Cfg.cache_size_bytes
          ~assoc:cfg.Cfg.cache_assoc;
      stats = Mstats.create ();
      acc = (let a = Acc.create () in Acc.set_rates a cfg.Cfg.energy; a);
      ops = Exec.null_ops;
      detector;
      shadow = None;
    }
  in
  t.ops <- make_ops t;
  t

let cpu t = t.cpu
let nvm t = t.nvm
let cache t = Some t.cache
let mstats t = t.stats
let acc t = t.acc
let detector t = t.detector
let halted t = t.cpu.Cpu.halted

let step t =
  if t.cfg.Cfg.reference_interp then
    Exec.step_reference t.cpu t.prog t.stats t.ops t.acc
  else Exec.step t.cpu t.dec t.stats t.ops t.acc

let jit_backup_cost t = Some (Jit_common.reg_backup (e t))
let commit_jit_backup t ~now_ns:_ = t.shadow <- Some (Cpu.snapshot t.cpu)
let continues_after_backup = false

let on_power_failure t ~now_ns:_ =
  Cache.invalidate_all t.cache;
  Cpu.reset t.cpu ~entry:t.prog.entry;
  Mstats.reset_region_counters t.stats

let on_reboot t ~now_ns =
  (match t.shadow with
  | Some snap -> Cpu.restore t.cpu snap
  | None -> Cpu.reset t.cpu ~entry:t.prog.entry);
  if Sweep_obs.Sink.on () then
    Sweep_obs.Sink.emit ~ns:now_ns
      (Sweep_obs.Event.Mark
         { name = "restore regs"; cat = Sweep_obs.Event.Power });
  let cost = Jit_common.reg_restore (e t) in
  t.stats.Mstats.restore_events <- t.stats.Mstats.restore_events + 1;
  t.stats.Mstats.f.Mstats.restore_joules <- t.stats.Mstats.f.Mstats.restore_joules +. cost.Cost.joules;
  cost

let drain _ ~now_ns:_ = Cost.zero

type t_alias = t

let packed cfg prog =
  let m =
    (module struct
      type t = t_alias

      let name = name
      let create = create
      let cpu = cpu
      let nvm = nvm
      let cache = cache
      let mstats = mstats
      let acc = acc
      let detector = detector
      let step = step
      let halted = halted
      let jit_backup_cost = jit_backup_cost
      let commit_jit_backup = commit_jit_backup
      let continues_after_backup = continues_after_backup
      let on_power_failure = on_power_failure
      let on_reboot = on_reboot
      let drain = drain
    end : Sweep_machine.Machine_intf.S
      with type t = t_alias)
  in
  Sweep_machine.Machine_intf.Packed (m, create cfg prog)
