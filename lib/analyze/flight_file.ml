(* Reader for Sweep_obs.Flight.dump artifacts: one header line, the
   ring's event tail as ordinary trace lines, and a closing metrics
   snapshot.  Event lines reuse Trace_reader.parse_line, so the loader
   tracks the sink format for free. *)

module Ev = Sweep_obs.Event

type header = {
  schema_version : int;
  job : string;
  error : string;
  backtrace : string;
  events : int;
  dropped : int;
}

type t = {
  header : header;
  entries : Trace_reader.entry list;
  malformed : int;
  metrics : Metrics_file.t option;
}

let header_of_json j =
  let ( let* ) = Option.bind in
  let* schema_version = Json.int_member "schema_version" j in
  let* kind = Json.string_member "kind" j in
  let* job = Json.string_member "job" j in
  let* error = Json.string_member "error" j in
  let* backtrace = Json.string_member "backtrace" j in
  let* events = Json.int_member "events" j in
  let* dropped = Json.int_member "dropped" j in
  if kind <> "postmortem" then None
  else Some { schema_version; job; error; backtrace; events; dropped }

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error (path ^ ": empty file")
        | first -> (
          let header =
            match Json.parse first with
            | Error _ -> None
            | Ok j -> header_of_json j
          in
          match header with
          | None ->
            Error
              (path
             ^ ": not a postmortem artifact (bad header line — expected \
                {\"kind\":\"postmortem\",...})")
          | Some h when h.schema_version <> Sweep_obs.Flight.schema_version ->
            Error
              (Printf.sprintf "%s: unsupported postmortem schema_version %d"
                 path h.schema_version)
          | Some header ->
            let entries = ref [] in
            let malformed = ref 0 in
            let metrics = ref None in
            (try
               while true do
                 let line = input_line ic in
                 if String.trim line <> "" then
                   match Trace_reader.parse_line line with
                   | Some e -> entries := e :: !entries
                   | None -> (
                     (* the one non-event line is the closing metrics
                        snapshot; anything else is malformed *)
                     match
                       Result.bind (Json.parse line) Metrics_file.of_json
                     with
                     | Ok m -> metrics := Some m
                     | Error _ -> incr malformed)
               done
             with End_of_file -> ());
            Ok
              {
                header;
                entries = List.rev !entries;
                malformed = !malformed;
                metrics = !metrics;
              }))

let take_last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let fmt_ns ns =
  if Float.abs ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if Float.abs ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let report ?(tail = 25) ~source t =
  let h = t.header in
  let failure =
    {
      Report.title = "Post-mortem";
      headers = [ "quantity"; "value" ];
      rows =
        [
          [ "job"; h.job ];
          [ "error"; h.error ];
          [ "ring events"; string_of_int h.events ];
          [ "ring dropped"; string_of_int h.dropped ];
        ];
      notes =
        (Printf.sprintf "source: %s" source)
        :: (if h.backtrace = "" then []
            else [ "backtrace: " ^ first_line h.backtrace ])
        @
        if h.dropped > 0 then
          [
            Printf.sprintf
              "ring overflowed: %d earlier events were dropped (fault \
               events are pinned and survive)."
              h.dropped;
          ]
        else [];
    }
  in
  let shown = take_last tail t.entries in
  let events =
    {
      Report.title = Printf.sprintf "Last %d events" (List.length shown);
      headers = [ "t"; "category"; "event"; "args" ];
      rows =
        List.map
          (fun e ->
            [
              fmt_ns e.Trace_reader.ns;
              Ev.category_name (Ev.category e.Trace_reader.event);
              Ev.tag e.Trace_reader.event;
              Ev.json_args e.Trace_reader.event;
            ])
          shown;
      notes =
        (if List.length t.entries > List.length shown then
           [
             Printf.sprintf "%d earlier events omitted (ring holds %d)."
               (List.length t.entries - List.length shown)
               (List.length t.entries);
           ]
         else [])
        @
        if t.malformed > 0 then
          [ Printf.sprintf "%d malformed lines skipped." t.malformed ]
        else [];
    }
  in
  let warnings =
    if t.malformed > 0 then
      [ Printf.sprintf "%d malformed artifact lines skipped" t.malformed ]
    else []
  in
  let sections =
    [ failure; events ]
    @
    match t.metrics with
    | Some m ->
      [
        {
          Report.title = "Metrics at failure";
          headers = [ "series"; "value" ];
          rows =
            List.map
              (fun (name, v) -> [ name; Printf.sprintf "%g" v ])
              (Metrics_file.numeric m);
          notes = [];
        };
      ]
    | None -> []
  in
  { Report.source; warnings; sections }
