(* Streaming reader for the JSONL event trace (Sweep_obs.Jsonl_sink
   output, or a Ring drained through it).  Lines are parsed one at a
   time — a multi-hour trace never has to fit in memory — and decoded
   back into typed events through Sweep_obs.Event.of_parts, so the
   constructor list and this reader cannot drift apart. *)

module Ev = Sweep_obs.Event

type entry = { ns : float; event : Ev.t }

type stats = {
  lines : int;       (* non-empty lines seen *)
  parsed : int;      (* lines decoded into events *)
  malformed : int;   (* lines rejected (bad JSON or unknown layout) *)
  dropped : int;     (* events lost before the trace was written
                        (sum of Dropped payloads; 0 = complete trace) *)
}

let empty_stats = { lines = 0; parsed = 0; malformed = 0; dropped = 0 }

(* The JSONL layout fields that are not event payload. *)
let meta_fields = [ "ns"; "ev"; "name"; "cat" ]

let arg_of_json = function
  | Json.Bool b -> Some (Ev.Bool b)
  | Json.Num f -> Some (Ev.Num f)
  | Json.Str s -> Some (Ev.Str s)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let parse_line line =
  match Json.parse line with
  | Error _ -> None
  | Ok j -> (
    match
      ( Json.float_member "ns" j,
        Json.string_member "ev" j,
        Json.string_member "name" j,
        Json.string_member "cat" j,
        Json.to_obj j )
    with
    | Some ns, Some tag, Some name, Some cat, Some fields ->
      let args =
        List.filter_map
          (fun (k, v) ->
            if List.mem k meta_fields then None
            else Option.map (fun a -> (k, a)) (arg_of_json v))
          fields
      in
      Option.map
        (fun event -> { ns; event })
        (Ev.of_parts ~tag ~name ~cat ~args)
    | _ -> None)

let fold path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let acc = ref init in
      let stats = ref empty_stats in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then begin
             let s = !stats in
             match parse_line line with
             | Some entry ->
               let dropped =
                 match entry.event with
                 | Ev.Dropped { count } -> s.dropped + count
                 | _ -> s.dropped
               in
               stats :=
                 { s with lines = s.lines + 1; parsed = s.parsed + 1; dropped };
               acc := f !acc entry
             | None ->
               stats :=
                 { s with lines = s.lines + 1; malformed = s.malformed + 1 }
           end
         done
       with End_of_file -> ());
      (!acc, !stats))

let read_all path =
  let entries, stats = fold path ~init:[] ~f:(fun acc e -> e :: acc) in
  (List.rev entries, stats)
