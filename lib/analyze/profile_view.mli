(** Reader/renderer for per-PC attribution profiles.

    {!Sweep_sim.Profile} writes the schema-versioned JSON table
    ([sweepsim --attrib], [sweepexp --attrib-dir]); this module loads
    it back, prints the [sweeptrace profile] report (whole-run summary,
    top-N tables for time / energy / NVM wear / re-execution, and
    per-function / per-opcode rollups), and diffs two profiles through
    {!Diff.compare_runs} with a profile-specific direction map. *)

type row = {
  pc : int;
  op : string;
  label : string;
  label_off : int;
  func : string;
  count : int;
  forward : int;
  reexec : int;
  crashes : int;
  ns : float;
  stall_ns : float;
  joules : float;
  backup_joules : float;
  restore_joules : float;
  ckpt_ns : float;
  nvm_writes : int;
  ckpt_nvm_writes : int;
  cache_misses : int;
}

type totals = {
  instructions : int;
  t_reexec : int;
  t_forward : int;
  t_nvm_writes : int;
  t_ckpt_nvm_writes : int;
  t_cache_misses : int;
  t_crashes : int;
  t_ns : float;
  t_stall_ns : float;
  t_joules : float;
  t_backup_joules : float;
  t_restore_joules : float;
  t_ckpt_ns : float;
}

type t = {
  design : string;
  bench : string;
  scale : float;
  key : string;
  totals : totals;
  rows : row list;
}

val of_json : Json.t -> (t, string) result
(** Strict: wrong [kind], unsupported [schema_version], or any missing
    row/totals field is an [Error]. *)

val load : string -> (t, string) result

val row_time : row -> float
(** [ns + ckpt_ns + stall_ns] — everything the PC cost on the clock. *)

val row_energy : row -> float
(** [joules + backup_joules + restore_joules]. *)

val row_wear : row -> int
(** [nvm_writes + ckpt_nvm_writes]. *)

val summary_text : t -> string
(** Whole-run header: retirement split, time, energy, wear. *)

val render_report : ?top:int -> t -> string
(** Summary plus top-[top] (default 10) tables by time, energy, NVM
    writes, and re-execution, then per-function and per-opcode
    rollups.  Deterministic: ties break on PC / group name. *)

val direction : string -> Sweep_exp.Results.direction
(** Profile-field direction map: retirement counts ([count], [forward],
    [instructions]) are [`Info]; every cost series is [`Lower_better]. *)

val to_run : t -> Diff.run
(** One Diff key per row ([pc<n>:<op>]) plus a [totals] pseudo-key that
    compares even across different programs. *)

val diff : ?threshold_pct:float -> t -> t -> (Diff.t, string) result
(** [Diff.compare_runs] over {!to_run} with {!direction}; default
    threshold 0.5%. *)

val diff_files :
  ?threshold_pct:float -> string -> string -> (Diff.t, string) result
