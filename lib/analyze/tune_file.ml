type entry = {
  id : string;
  cache_bytes : int;
  assoc : int;
  buffer_entries : int;
  store_cap : int;
  max_unroll : int;
  farads : float;
  trace : string;
  benches : string list;
  runtime_ns : float;
  nvm_writes : float;
  hw_bits : int;
}

type cell = {
  c_cache_bytes : int;
  c_assoc : int;
  c_buffer_entries : int;
  c_store_cap : int;
  c_max_unroll : int;
  c_farads : float;
  c_trace : string;
  bench : string;
  c_runtime_ns : float;
  c_nvm_writes : int;
  completed : bool;
  failed : bool;
}

let schema_version = 1

let entry_of_json j =
  let ( let* ) = Option.bind in
  let* id = Json.string_member "id" j in
  let* cache_bytes = Json.int_member "cache_bytes" j in
  let* assoc = Json.int_member "assoc" j in
  let* buffer_entries = Json.int_member "buffer_entries" j in
  let* store_cap = Json.int_member "store_cap" j in
  let* max_unroll = Json.int_member "max_unroll" j in
  let* farads = Json.float_member "farads" j in
  let* trace = Json.string_member "trace" j in
  let* benches =
    Option.map
      (List.filter_map Json.to_string)
      (Json.list_member "benches" j)
  in
  let* runtime_ns = Json.float_member "runtime_ns" j in
  let* nvm_writes = Json.float_member "nvm_writes" j in
  let* hw_bits = Json.int_member "hw_bits" j in
  Some
    { id; cache_bytes; assoc; buffer_entries; store_cap; max_unroll; farads;
      trace; benches; runtime_ns; nvm_writes; hw_bits }

let cell_of_json j =
  let ( let* ) = Option.bind in
  let* c_cache_bytes = Json.int_member "cache_bytes" j in
  let* c_assoc = Json.int_member "assoc" j in
  let* c_buffer_entries = Json.int_member "buffer_entries" j in
  let* c_store_cap = Json.int_member "store_cap" j in
  let* c_max_unroll = Json.int_member "max_unroll" j in
  let* c_farads = Json.float_member "farads" j in
  let* c_trace = Json.string_member "trace" j in
  let* bench = Json.string_member "bench" j in
  let* c_runtime_ns = Json.float_member "runtime_ns" j in
  let* c_nvm_writes = Json.int_member "nvm_writes" j in
  let* completed = Json.bool_member "completed" j in
  let* failed = Json.bool_member "failed" j in
  Some
    { c_cache_bytes; c_assoc; c_buffer_entries; c_store_cap; c_max_unroll;
      c_farads; c_trace; bench; c_runtime_ns; c_nvm_writes; completed; failed }

(* Forgiving JSONL reader: the strict loader lives next to the writer in
   sweepcache.tune; here an odd line degrades to a warning so a report
   still renders from what is readable. *)
let load_lines ~what of_json path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    let ic = open_in path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    let items = ref [] and warnings = ref [] in
    List.iteri
      (fun idx raw ->
        if String.trim raw <> "" then
          let warn fmt =
            Printf.ksprintf
              (fun m -> warnings := m :: !warnings)
              ("%s line %d: " ^^ fmt)
              what (idx + 1)
          in
          match Json.parse raw with
          | Error e -> warn "%s" e
          | Ok j -> (
              match Json.int_member "schema_version" j with
              | Some v when v <> schema_version ->
                  warn "schema version %d (expected %d)" v schema_version
              | _ -> (
                  match of_json j with
                  | Some item -> items := item :: !items
                  | None -> warn "missing fields"))
      )
      (List.rev !lines);
    Ok (List.rev !items, List.rev !warnings)
  end

let load_frontier path = load_lines ~what:"frontier" entry_of_json path
let load_journal path = load_lines ~what:"journal" cell_of_json path

let farads_label f =
  if f >= 1e-3 then Printf.sprintf "%gmF" (f /. 1e-3)
  else if f >= 1e-6 then Printf.sprintf "%guF" (f /. 1e-6)
  else Printf.sprintf "%gnF" (f /. 1e-9)

let ms ns = Printf.sprintf "%.3f" (ns /. 1e6)

let frontier_section entries =
  let rows =
    List.map
      (fun e ->
        [ e.id;
          string_of_int e.cache_bytes;
          string_of_int e.assoc;
          string_of_int e.buffer_entries;
          string_of_int e.store_cap;
          string_of_int e.max_unroll;
          farads_label e.farads;
          e.trace;
          ms e.runtime_ns;
          Printf.sprintf "%.0f" e.nvm_writes;
          string_of_int e.hw_bits ])
      entries
  in
  let benches =
    match entries with
    | [] -> []
    | e :: _ ->
        [ Printf.sprintf "objectives over benches: %s"
            (String.concat ", " e.benches) ]
  in
  {
    Report.title =
      Printf.sprintf "Pareto frontier (%d point%s)" (List.length entries)
        (if List.length entries = 1 then "" else "s");
    headers =
      [ "point"; "cache B"; "ways"; "buf entries"; "store cap"; "unroll";
        "capacitor"; "trace"; "runtime ms"; "NVM writes"; "HW bits" ];
    rows;
    notes =
      "all objectives lower-better: geomean runtime, summed NVM writes, \
       hardware bits"
      :: benches;
  }

(* Per-axis sensitivity over completed journal cells, mirroring the
   paper's one-axis-at-a-time §6 sweeps. *)
let axes =
  [
    ("cache size", "cache geometry sweep (§6.8, Fig. 8)",
     fun c -> string_of_int c.c_cache_bytes);
    ("associativity", "cache geometry sweep (§6.8, Fig. 8)",
     fun c -> string_of_int c.c_assoc);
    ("buffer entries", "persist-buffer capacity / hardware cost (§6.9)",
     fun c -> string_of_int c.c_buffer_entries);
    ("store cap", "region store threshold (§6.4)",
     fun c -> string_of_int c.c_store_cap);
    ("max unroll", "compiler unrolling knob (§4)",
     fun c -> string_of_int c.c_max_unroll);
    ("capacitor", "capacitor sizing (§6.6, Tab. 2 / Fig. 9)",
     fun c -> farads_label c.c_farads);
    ("power trace", "ambient power environments (§6.7, Fig. 10)",
     fun c -> c.c_trace);
  ]

let geomean = function
  | [] -> 0.0
  | xs ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let sensitivity_sections cells =
  let ok = List.filter (fun c -> c.completed && not c.failed) cells in
  let skipped = List.length cells - List.length ok in
  List.filter_map
    (fun (axis, figure, value_of) ->
      let values =
        List.sort_uniq Stdlib.compare (List.map value_of ok)
        (* numeric axes render as digits: sort numerically when possible *)
        |> List.sort (fun a b ->
               match (int_of_string_opt a, int_of_string_opt b) with
               | Some x, Some y -> Stdlib.compare x y
               | _ -> Stdlib.compare a b)
      in
      if List.length values < 2 then None
      else
        let rows =
          List.map
            (fun v ->
              let group = List.filter (fun c -> value_of c = v) ok in
              let n = List.length group in
              let runtime =
                geomean (List.map (fun c -> c.c_runtime_ns) group)
              in
              let writes =
                List.fold_left
                  (fun acc c -> acc +. float_of_int c.c_nvm_writes)
                  0.0 group
                /. float_of_int (max 1 n)
              in
              [ v; string_of_int n; ms runtime; Printf.sprintf "%.0f" writes ])
            values
        in
        Some
          {
            Report.title = Printf.sprintf "Sensitivity: %s" axis;
            headers = [ axis; "cells"; "geomean runtime ms"; "mean NVM writes" ];
            rows;
            notes =
              [ figure ]
              @ (if skipped > 0 then
                   [ Printf.sprintf
                       "%d failed/incomplete cell(s) excluded" skipped ]
                 else []);
          })
    axes

let report ?(journal = []) ~source entries =
  {
    Report.source;
    warnings = [];
    sections = frontier_section entries :: sensitivity_sections journal;
  }
