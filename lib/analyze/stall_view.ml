(* Stall and buffer-traffic attribution: where execution time went
   besides useful instructions — WAW stalls (§4.3), structural waits at
   region boundaries (§3.3) — and how misses interacted with the
   persist buffers (searches vs empty-bit bypasses, §4.4). *)

module Ev = Sweep_obs.Event

type t = {
  waw_stalls : int;
  waw_ns : float;
  waits : int;
  wait_ns : float;
  searches : int;
  scanned : int;          (* entries examined across all searches *)
  search_hits : int;
  bypasses : int;
  load_misses : int;
  store_misses : int;
  writebacks : int;
  first_ns : float;       (* trace horizon *)
  last_ns : float;
}

let of_entries entries =
  let t =
    ref
      {
        waw_stalls = 0;
        waw_ns = 0.0;
        waits = 0;
        wait_ns = 0.0;
        searches = 0;
        scanned = 0;
        search_hits = 0;
        bypasses = 0;
        load_misses = 0;
        store_misses = 0;
        writebacks = 0;
        first_ns = infinity;
        last_ns = neg_infinity;
      }
  in
  List.iter
    (fun { Trace_reader.ns; event } ->
      let s = !t in
      let s =
        if Float.is_finite ns then
          {
            s with
            first_ns = min s.first_ns ns;
            last_ns = max s.last_ns ns;
          }
        else s
      in
      t :=
        (match event with
        | Ev.Waw_stall { ns = dur; _ } ->
          { s with waw_stalls = s.waw_stalls + 1; waw_ns = s.waw_ns +. dur }
        | Ev.Buf_wait { ns = dur; _ } ->
          { s with waits = s.waits + 1; wait_ns = s.wait_ns +. dur }
        | Ev.Buffer_search { scanned; hit } ->
          {
            s with
            searches = s.searches + 1;
            scanned = s.scanned + scanned;
            search_hits = (s.search_hits + if hit then 1 else 0);
          }
        | Ev.Buffer_bypass -> { s with bypasses = s.bypasses + 1 }
        | Ev.Cache_miss { write = false; _ } ->
          { s with load_misses = s.load_misses + 1 }
        | Ev.Cache_miss { write = true; _ } ->
          { s with store_misses = s.store_misses + 1 }
        | Ev.Cache_writeback _ -> { s with writebacks = s.writebacks + 1 }
        | _ -> s))
    entries;
  !t

let horizon_ns t =
  if t.last_ns > t.first_ns then t.last_ns -. t.first_ns else 0.0

let bypass_rate t =
  let total = t.searches + t.bypasses in
  if total = 0 then 0.0 else float_of_int t.bypasses /. float_of_int total

let hit_rate t =
  if t.searches = 0 then 0.0
  else float_of_int t.search_hits /. float_of_int t.searches

let avg_scanned t =
  if t.searches = 0 then 0.0
  else float_of_int t.scanned /. float_of_int t.searches
