(** Reader for the [--metrics-out] snapshot
    ({!Sweep_obs.Metrics.render_json} output). *)

type sample =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

type t = (string * sample) list
(** Canonical series name ([name{k=v}]) → sample. *)

val of_json : Json.t -> (t, string) result
(** Validates [schema_version]. *)

val load : string -> (t, string) result

val numeric : t -> (string * float) list
(** Flatten for diffing: counters and gauges as-is, a histogram as
    [name.count] and [name.sum]. *)
