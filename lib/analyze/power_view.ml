(* Outage and recovery accounting: power cycles, backup/restore energy,
   and the three recovery cases of SweepCache's protocol (§4.2) — a
   buffer found with s-phase1 incomplete is discarded ((0,0)), with
   s-phase1 complete but s-phase2 not is re-driven ((1,0)), and a
   reboot that finds nothing to redo or discard means every buffer had
   fully drained ((1,1)).  The (1,0)/(0,0) marks are parsed from the
   core's "redo seq N (L lines)" / "discard seq N (L lines)" reboot
   markers. *)

module Ev = Sweep_obs.Event

type t = {
  power_downs : int;
  deaths : int;
  reboots : int;
  off_ns : float;            (* sum of Power_down -> Reboot gaps *)
  backups_ok : int;
  backups_failed : int;
  backup_joules : float;     (* committed backups only *)
  restores : int;
  restore_joules : float;
  replayed_stores : int;     (* ReplayCache recovery work *)
  backup_lines : int;        (* JIT designs: lines checkpointed *)
  redo_buffers : int;        (* (1,0): buffers re-driven on reboot *)
  redo_lines : int;
  discarded_buffers : int;   (* (0,0): buffers discarded on reboot *)
  discarded_lines : int;
  clean_reboots : int;       (* (1,1): nothing to redo or discard *)
  injected_faults : int;     (* adversarial crashes (sweepcheck / --fault) *)
  nested_faults : int;       (* of which fired during recovery itself *)
  torn_lines : int;          (* partial line writes at a crash *)
  torn_words : int;
  stuck_bits : int;          (* stuck phase1/phase2 completion bits *)
}

type state = {
  mutable acc : t;
  mutable down_ns : float option;
  (* Marks of the reboot being processed, to classify it as clean. *)
  mutable current_reboot_dirty : bool;
  mutable pending_reboot : bool;
}

let zero =
  {
    power_downs = 0;
    deaths = 0;
    reboots = 0;
    off_ns = 0.0;
    backups_ok = 0;
    backups_failed = 0;
    backup_joules = 0.0;
    restores = 0;
    restore_joules = 0.0;
    replayed_stores = 0;
    backup_lines = 0;
    redo_buffers = 0;
    redo_lines = 0;
    discarded_buffers = 0;
    discarded_lines = 0;
    clean_reboots = 0;
    injected_faults = 0;
    nested_faults = 0;
    torn_lines = 0;
    torn_words = 0;
    stuck_bits = 0;
  }

(* "redo seq 12 (3 lines)" -> 3; "discard seq 12 (3 lines)" -> 3 *)
let mark_lines name =
  match String.rindex_opt name '(' with
  | None -> 0
  | Some i -> (
    try Scanf.sscanf (String.sub name i (String.length name - i))
          "(%d lines)" (fun n -> n)
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> 0)

let prefixed ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* The reboot marks arrive *after* the Reboot event (they are emitted
   during on_reboot); a reboot is settled as clean when the next
   power-down (or end of trace) arrives with no redo/discard seen. *)
let settle st =
  if st.pending_reboot && not st.current_reboot_dirty then
    st.acc <- { st.acc with clean_reboots = st.acc.clean_reboots + 1 };
  st.pending_reboot <- false;
  st.current_reboot_dirty <- false

let feed st { Trace_reader.ns; event } =
  let a = st.acc in
  match event with
  | Ev.Power_down _ ->
    settle st;
    (* re-read: settle may have just counted a clean reboot *)
    let a = st.acc in
    st.down_ns <- Some ns;
    st.acc <- { a with power_downs = a.power_downs + 1 }
  | Ev.Death _ -> st.acc <- { a with deaths = a.deaths + 1 }
  | Ev.Reboot _ ->
    let off =
      match st.down_ns with Some d when ns > d -> ns -. d | _ -> 0.0
    in
    st.down_ns <- None;
    st.pending_reboot <- true;
    st.current_reboot_dirty <- false;
    st.acc <- { a with reboots = a.reboots + 1; off_ns = a.off_ns +. off }
  | Ev.Backup { ok = true; joules } ->
    st.acc <-
      {
        a with
        backups_ok = a.backups_ok + 1;
        backup_joules = a.backup_joules +. joules;
      }
  | Ev.Backup { ok = false; _ } ->
    st.acc <- { a with backups_failed = a.backups_failed + 1 }
  | Ev.Restore { joules } ->
    st.acc <-
      { a with restores = a.restores + 1;
        restore_joules = a.restore_joules +. joules }
  | Ev.Replay { stores } ->
    st.acc <- { a with replayed_stores = a.replayed_stores + stores }
  | Ev.Backup_lines { lines } ->
    st.acc <- { a with backup_lines = a.backup_lines + lines }
  | Ev.Mark { name; cat = Ev.Buffer } when prefixed ~prefix:"redo seq" name ->
    st.current_reboot_dirty <- true;
    st.acc <-
      {
        a with
        redo_buffers = a.redo_buffers + 1;
        redo_lines = a.redo_lines + mark_lines name;
      }
  | Ev.Mark { name; cat = Ev.Buffer } when prefixed ~prefix:"discard seq" name
    ->
    st.current_reboot_dirty <- true;
    st.acc <-
      {
        a with
        discarded_buffers = a.discarded_buffers + 1;
        discarded_lines = a.discarded_lines + mark_lines name;
      }
  | Ev.Fault_inject { trigger; _ } ->
    st.acc <-
      {
        a with
        injected_faults = a.injected_faults + 1;
        nested_faults =
          (a.nested_faults + if trigger = "nested" then 1 else 0);
      }
  | Ev.Fault_torn { words; _ } ->
    st.acc <-
      {
        a with
        torn_lines = a.torn_lines + 1;
        torn_words = a.torn_words + words;
      }
  | Ev.Fault_stuck _ -> st.acc <- { a with stuck_bits = a.stuck_bits + 1 }
  | _ -> ()

let of_entries entries =
  let st =
    { acc = zero; down_ns = None; current_reboot_dirty = false;
      pending_reboot = false }
  in
  List.iter (feed st) entries;
  settle st;
  st.acc
