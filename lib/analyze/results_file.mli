(** Reader for the results JSONL files the experiment stack appends
    ({!Sweep_exp.Results} schema): one record per key, last line wins
    when a file accumulated several runs of the same job. *)

type record = {
  key : string;
  experiment : string;
  design : string;
  bench : string;
  metrics : (string * float) list;
}

val with_derived : (string * float) list -> (string * float) list
(** Append the derived [total_ns] / [total_joules] series when their
    inputs are present. *)

val record_of_line : Json.t -> record option

val load : string -> (record list, string) result
(** [Error] when the file is unreadable or holds no parseable lines. *)
