(** Reader/validator for the live status snapshot
    ({!Sweep_exp.Status} output, [sweepexp --status-file]).

    The file is ephemeral operational telemetry; this module exists so
    dashboards, CI and [sweeptrace lint --status] can check that a
    snapshot is well-formed without hand-rolled JSON poking. *)

type running = {
  job : string;
  elapsed_s : float;
  beats : int;
  instructions : int;
  sim_ns : float;
  reboots : int;
  nvm_writes : int;
  instr_per_s : float;
  est_progress : float option;  (** [None] until a job has finished *)
}

type cohort = {
  cohort : string;
  c_total : int;
  c_queued : int;
  c_running : int;
  c_done : int;
  c_failed : int;
}
(** One fleet-cohort rollup record (schema v3 only). *)

type t = {
  schema_version : int;
  ts_s : float;
  elapsed_s : float;
  workers : int;
  total : int;
  queued : int;
  running_n : int;
  done_ : int;
  failed : int;
  retried : int;
      (** supervised runs: attempts requeued after a worker death (not
          part of the [total] sum — a retried job returns to [queued]) *)
  pct_done : float;
  eta_s : float option;
  instr_per_s : float;
  cohorts : cohort list;  (** empty in schema v2 *)
  running_shown : int option;
      (** [Some n] in schema v3, where the [running] array is capped at
          [n] entries; [None] in v2 (the array is complete) *)
  running : running list;
}

val of_json : Json.t -> (t, string) result
(** Validates [schema_version] (v2 plain, or the v3 cohort-rollup
    schema fleet runs write) and that every required field is present
    with the right type. *)

val load : string -> (t, string) result

val validate : t -> string list
(** Internal-consistency problems beyond shape: job counts that don't
    add up to [total], [pct_done] or [est_progress] out of range,
    negative counters.  Empty list means clean. *)
