(** Outage and recovery accounting, including SweepCache's three
    recovery cases (§4.2): a buffer found with s-phase1 incomplete is
    discarded ((0,0)), one with s-phase1 complete but s-phase2 not is
    re-driven ((1,0)), and a reboot with nothing to redo or discard
    means every buffer had fully drained ((1,1)).  The (1,0)/(0,0)
    marks are parsed from the core's "redo seq N (L lines)" /
    "discard seq N (L lines)" reboot markers. *)

type t = {
  power_downs : int;
  deaths : int;
  reboots : int;
  off_ns : float;          (** sum of Power_down → Reboot gaps *)
  backups_ok : int;
  backups_failed : int;
  backup_joules : float;
  restores : int;
  restore_joules : float;
  replayed_stores : int;
  backup_lines : int;
  redo_buffers : int;      (** (1,0) *)
  redo_lines : int;
  discarded_buffers : int; (** (0,0) *)
  discarded_lines : int;
  clean_reboots : int;     (** (1,1) *)
  injected_faults : int;   (** adversarial crashes ([Fault_inject]) *)
  nested_faults : int;     (** of which fired during recovery itself *)
  torn_lines : int;        (** torn-DMA partial line writes *)
  torn_words : int;
  stuck_bits : int;        (** stuck phase-completion bits *)
}

val of_entries : Trace_reader.entry list -> t
