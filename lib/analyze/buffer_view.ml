(* Per-persist-buffer occupancy from the Buf_phase spans: busy time per
   phase (fill / flush / drain), dead time between uses (a buffer's
   drain end → its next fill start), and the cross-buffer overlap that
   is the paper's region-level parallelism made quantitative (§3.3,
   Fig. 5's source of speedup). *)

module Ev = Sweep_obs.Event

(* Dead-time histogram bucket upper bounds, in ns (overflow bucket
   appended by [histogram]). *)
let dead_time_bounds = [| 1e2; 1e3; 1e4; 1e5; 1e6; 1e7 |]

type per_buffer = {
  buf : int;
  cycles : int;           (* fill→flush→drain uses (fill spans seen) *)
  fill_ns : float;
  flush_ns : float;
  drain_ns : float;
  dead_ns : float;        (* idle gaps between consecutive uses *)
  dead_gaps : float list; (* each gap, ns *)
}

type t = {
  buffers : per_buffer list;   (* ascending buffer index *)
  overlap_ns : float;          (* time with >= 2 buffers busy *)
  busy_union_ns : float;       (* time with >= 1 buffer busy *)
}

type raw = { phase : Ev.phase; start_ns : float; end_ns : float }

let of_entries entries =
  let tbl : (int, raw list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun { Trace_reader.event; _ } ->
      match event with
      | Ev.Buf_phase { buf; phase; start_ns; end_ns; _ }
        when end_ns > start_ns ->
        let cell =
          match Hashtbl.find_opt tbl buf with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace tbl buf r;
            r
        in
        cell := { phase; start_ns; end_ns } :: !cell
      | _ -> ())
    entries;
  let buffers =
    Hashtbl.fold (fun buf spans acc -> (buf, List.rev !spans) :: acc) tbl []
    |> List.sort compare
    |> List.map (fun (buf, spans) ->
           let fill_ns = ref 0.0 and flush_ns = ref 0.0 and drain_ns = ref 0.0 in
           let cycles = ref 0 in
           List.iter
             (fun { phase; start_ns; end_ns } ->
               let d = end_ns -. start_ns in
               match phase with
               | Ev.Fill ->
                 incr cycles;
                 fill_ns := !fill_ns +. d
               | Ev.Flush -> flush_ns := !flush_ns +. d
               | Ev.Drain -> drain_ns := !drain_ns +. d)
             spans;
           (* Idle gaps between consecutive busy intervals of this
              buffer (sorted by start; fill/flush/drain of one use are
              contiguous, so gaps are the between-use dead time). *)
           let sorted =
             List.sort
               (fun a b -> compare (a.start_ns, a.end_ns) (b.start_ns, b.end_ns))
               spans
           in
           let dead_gaps = ref [] in
           let last_end = ref neg_infinity in
           List.iter
             (fun { start_ns; end_ns; _ } ->
               if Float.is_finite !last_end && start_ns > !last_end then
                 dead_gaps := (start_ns -. !last_end) :: !dead_gaps;
               last_end := max !last_end end_ns)
             sorted;
           let dead_gaps = List.rev !dead_gaps in
           {
             buf;
             cycles = !cycles;
             fill_ns = !fill_ns;
             flush_ns = !flush_ns;
             drain_ns = !drain_ns;
             dead_ns = List.fold_left ( +. ) 0.0 dead_gaps;
             dead_gaps;
           })
  in
  (* Cross-buffer overlap: sweep the union of all busy intervals. *)
  let edges =
    Hashtbl.fold
      (fun _ spans acc ->
        List.fold_left
          (fun acc { start_ns; end_ns; _ } ->
            (start_ns, 1) :: (end_ns, -1) :: acc)
          acc !spans)
      tbl []
    |> List.sort compare
  in
  let overlap_ns = ref 0.0 and busy_union_ns = ref 0.0 in
  let depth = ref 0 and prev = ref nan in
  List.iter
    (fun (t, d) ->
      if Float.is_finite !prev && t > !prev then begin
        let span = t -. !prev in
        if !depth >= 1 then busy_union_ns := !busy_union_ns +. span;
        if !depth >= 2 then overlap_ns := !overlap_ns +. span
      end;
      depth := !depth + d;
      prev := t)
    edges;
  { buffers; overlap_ns = !overlap_ns; busy_union_ns = !busy_union_ns }

let busy_ns b = b.fill_ns +. b.flush_ns +. b.drain_ns

(* Counts per dead-time bucket (overflow appended), paired with upper
   bounds. *)
let dead_time_histogram t =
  let n = Array.length dead_time_bounds in
  let counts = Array.make (n + 1) 0 in
  List.iter
    (fun b ->
      List.iter
        (fun gap ->
          let rec slot i =
            if i >= n || gap <= dead_time_bounds.(i) then i else slot (i + 1)
          in
          let i = slot 0 in
          counts.(i) <- counts.(i) + 1)
        b.dead_gaps)
    t.buffers;
  List.init (n + 1) (fun i ->
      ((if i < n then dead_time_bounds.(i) else infinity), counts.(i)))
