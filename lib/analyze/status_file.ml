(* Reader/validator for the --status-file snapshot (Sweep_exp.Status
   output).  Strict on shape so CI catches schema drift the moment the
   writer changes. *)

type running = {
  job : string;
  elapsed_s : float;
  beats : int;
  instructions : int;
  sim_ns : float;
  reboots : int;
  nvm_writes : int;
  instr_per_s : float;
  est_progress : float option;
}

type cohort = {
  cohort : string;
  c_total : int;
  c_queued : int;
  c_running : int;
  c_done : int;
  c_failed : int;
}

type t = {
  schema_version : int;
  ts_s : float;
  elapsed_s : float;
  workers : int;
  total : int;
  queued : int;
  running_n : int;
  done_ : int;
  failed : int;
  retried : int;
  pct_done : float;
  eta_s : float option;
  instr_per_s : float;
  cohorts : cohort list;
  running_shown : int option;
  running : running list;
}

let ( let* ) = Result.bind

let req what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %s" what)

(* null is a legitimate value for eta_s / est_progress; anything else
   must be a number. *)
let opt_float what j =
  match j with
  | None -> Error (Printf.sprintf "missing field %s" what)
  | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_float v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "field %s is neither number nor null" what))

let running_of_json j =
  let* job = req "running[].job" (Json.string_member "job" j) in
  let* elapsed_s = req "running[].elapsed_s" (Json.float_member "elapsed_s" j) in
  let* beats = req "running[].beats" (Json.int_member "beats" j) in
  let* instructions =
    req "running[].instructions" (Json.int_member "instructions" j)
  in
  let* sim_ns = req "running[].sim_ns" (Json.float_member "sim_ns" j) in
  let* reboots = req "running[].reboots" (Json.int_member "reboots" j) in
  let* nvm_writes =
    req "running[].nvm_writes" (Json.int_member "nvm_writes" j)
  in
  let* instr_per_s =
    req "running[].instr_per_s" (Json.float_member "instr_per_s" j)
  in
  let* est_progress = opt_float "running[].est_progress" (Json.member "est_progress" j) in
  Ok
    {
      job;
      elapsed_s;
      beats;
      instructions;
      sim_ns;
      reboots;
      nvm_writes;
      instr_per_s;
      est_progress;
    }

let cohort_of_json j =
  let* cohort = req "cohorts[].cohort" (Json.string_member "cohort" j) in
  let* c_total = req "cohorts[].total" (Json.int_member "total" j) in
  let* c_queued = req "cohorts[].queued" (Json.int_member "queued" j) in
  let* c_running = req "cohorts[].running" (Json.int_member "running" j) in
  let* c_done = req "cohorts[].done" (Json.int_member "done" j) in
  let* c_failed = req "cohorts[].failed" (Json.int_member "failed" j) in
  Ok { cohort; c_total; c_queued; c_running; c_done; c_failed }

let of_json j =
  let* schema_version =
    req "schema_version" (Json.int_member "schema_version" j)
  in
  if
    schema_version <> Sweep_exp.Status.schema_version
    && schema_version <> Sweep_exp.Status.rollup_schema_version
  then
    Error (Printf.sprintf "unsupported status schema_version %d" schema_version)
  else
    let rollup = schema_version = Sweep_exp.Status.rollup_schema_version in
    let* ts_s = req "ts_s" (Json.float_member "ts_s" j) in
    let* elapsed_s = req "elapsed_s" (Json.float_member "elapsed_s" j) in
    let* workers = req "workers" (Json.int_member "workers" j) in
    let* jobs = req "jobs" (Json.member "jobs" j) in
    let* total = req "jobs.total" (Json.int_member "total" jobs) in
    let* queued = req "jobs.queued" (Json.int_member "queued" jobs) in
    let* running_n = req "jobs.running" (Json.int_member "running" jobs) in
    let* done_ = req "jobs.done" (Json.int_member "done" jobs) in
    let* failed = req "jobs.failed" (Json.int_member "failed" jobs) in
    let* retried = req "jobs.retried" (Json.int_member "retried" jobs) in
    let* pct_done = req "jobs.pct_done" (Json.float_member "pct_done" jobs) in
    let* eta_s = opt_float "eta_s" (Json.member "eta_s" j) in
    let* throughput = req "throughput" (Json.member "throughput" j) in
    let* instr_per_s =
      req "throughput.instr_per_s" (Json.float_member "instr_per_s" throughput)
    in
    (* Cohort rollup fields exist exactly in v3 — their absence there,
       or presence in v2, is schema drift. *)
    let* cohorts =
      if not rollup then
        match Json.member "cohorts" j with
        | None -> Ok []
        | Some _ -> Error "unexpected field cohorts in schema_version 2"
      else
        let* cohort_js = req "cohorts" (Json.list_member "cohorts" j) in
        let* cohorts =
          List.fold_left
            (fun acc c ->
              let* acc = acc in
              let* c = cohort_of_json c in
              Ok (c :: acc))
            (Ok []) cohort_js
        in
        Ok (List.rev cohorts)
    in
    let* running_shown =
      if not rollup then
        match Json.member "running_shown" j with
        | None -> Ok None
        | Some _ -> Error "unexpected field running_shown in schema_version 2"
      else
        let* n = req "running_shown" (Json.int_member "running_shown" j) in
        Ok (Some n)
    in
    let* running_js = req "running" (Json.list_member "running" j) in
    let* running =
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let* r = running_of_json r in
          Ok (r :: acc))
        (Ok []) running_js
    in
    Ok
      {
        schema_version;
        ts_s;
        elapsed_s;
        workers;
        total;
        queued;
        running_n;
        done_;
        failed;
        retried;
        pct_done;
        eta_s;
        instr_per_s;
        cohorts;
        running_shown;
        running = List.rev running;
      }

let load path =
  match Json.parse_file path with
  | Error e -> Error (path ^ ": " ^ e)
  | Ok j -> (
    match of_json j with Error e -> Error (path ^ ": " ^ e) | Ok t -> Ok t)

let validate t =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if t.workers < 1 then bad "workers %d < 1" t.workers;
  if t.total < 0 || t.queued < 0 || t.running_n < 0 || t.done_ < 0
     || t.failed < 0 || t.retried < 0
  then bad "negative job count";
  if t.queued + t.running_n + t.done_ + t.failed <> t.total then
    bad "job counts don't add up: %d queued + %d running + %d done + %d failed <> %d total"
      t.queued t.running_n t.done_ t.failed t.total;
  if t.pct_done < 0.0 || t.pct_done > 100.0 then
    bad "pct_done %.2f out of [0, 100]" t.pct_done;
  (match t.eta_s with
  | Some e when e < 0.0 -> bad "eta_s %.1f < 0" e
  | _ -> ());
  List.iter
    (fun c ->
      if
        c.c_total < 0 || c.c_queued < 0 || c.c_running < 0 || c.c_done < 0
        || c.c_failed < 0
      then bad "cohort %s has a negative counter" c.cohort;
      (* An undeclared cohort renders total 0 while jobs move — only a
         declared total is checkable against its parts. *)
      if
        c.c_total > 0
        && c.c_queued + c.c_running + c.c_done + c.c_failed <> c.c_total
      then
        bad
          "cohort %s counts don't add up: %d queued + %d running + %d done + \
           %d failed <> %d total"
          c.cohort c.c_queued c.c_running c.c_done c.c_failed c.c_total)
    t.cohorts;
  (match t.running_shown with
  | None ->
    if List.length t.running <> t.running_n then
      bad "running list has %d entries, jobs.running says %d"
        (List.length t.running) t.running_n
  | Some shown ->
    (* Rollup mode: the running array is capped, so it matches
       running_shown (itself never above the true running count). *)
    if shown < 0 then bad "running_shown %d < 0" shown;
    if shown > t.running_n then
      bad "running_shown %d exceeds jobs.running %d" shown t.running_n;
    if List.length t.running <> shown then
      bad "running list has %d entries, running_shown says %d"
        (List.length t.running) shown);
  List.iter
    (fun r ->
      if r.beats < 0 || r.instructions < 0 || r.reboots < 0 || r.nvm_writes < 0
      then bad "running job %s has a negative counter" r.job;
      match r.est_progress with
      | Some p when p < 0.0 || p > 1.0 ->
        bad "running job %s est_progress %.3f out of [0, 1]" r.job p
      | _ -> ())
    t.running;
  List.rev !problems
