(** Stall and buffer-traffic attribution: WAW persist-order stalls
    (§4.3), structural waits for a free persist buffer (§3.3), and how
    misses interacted with the buffers — sequential searches vs
    empty-bit bypasses (§4.4). *)

type t = {
  waw_stalls : int;
  waw_ns : float;
  waits : int;
  wait_ns : float;
  searches : int;
  scanned : int;      (** entries examined across all searches *)
  search_hits : int;
  bypasses : int;
  load_misses : int;
  store_misses : int;
  writebacks : int;
  first_ns : float;
  last_ns : float;
}

val of_entries : Trace_reader.entry list -> t

val horizon_ns : t -> float
(** [last_ns - first_ns]; 0 on an empty trace. *)

val bypass_rate : t -> float
(** Bypasses / (searches + bypasses). *)

val hit_rate : t -> float
val avg_scanned : t -> float
