(** Per-persist-buffer occupancy from the [Buf_phase] spans: busy time
    per phase, dead time between uses, and the cross-buffer overlap
    that is region-level parallelism made quantitative (§3.3). *)

type per_buffer = {
  buf : int;
  cycles : int;       (** fill→flush→drain uses (fill spans seen) *)
  fill_ns : float;
  flush_ns : float;   (** s-phase1 *)
  drain_ns : float;   (** s-phase2 *)
  dead_ns : float;
  dead_gaps : float list;
}

type t = {
  buffers : per_buffer list;  (** ascending buffer index *)
  overlap_ns : float;         (** time with >= 2 buffers busy *)
  busy_union_ns : float;      (** time with >= 1 buffer busy *)
}

val dead_time_bounds : float array
(** Histogram bucket upper bounds, ns. *)

val of_entries : Trace_reader.entry list -> t
val busy_ns : per_buffer -> float

val dead_time_histogram : t -> (float * int) list
(** (upper bound, gap count) per bucket, overflow bucket ([infinity])
    appended. *)
