(* Per-region accounting from the trace: forward progress vs wasted
   (re-executed) work, and region-latency distribution.

   A region span opens at Region_begin and closes at the next
   Region_end.  The driver emits Power_down (and Death, for hard
   deaths) *before* the machine closes the interrupted region at the
   same timestamp, so a Region_end whose ns equals the last power-event
   ns is an interruption: that region's work is lost and re-executes
   under a new sequence number after reboot (SweepCache §4.2 — the same
   accounting as Alpaca's re-execution cost). *)

module Ev = Sweep_obs.Event

type t = {
  completed : int;        (* regions that reached their boundary *)
  interrupted : int;      (* regions cut by a power failure *)
  forward_ns : float;     (* execution time inside completed regions *)
  wasted_ns : float;      (* execution time inside interrupted regions *)
  latencies : float array; (* completed-region spans, ascending *)
}

type state = {
  mutable open_region : (int * float) option; (* seq, begin ns *)
  mutable last_power_ns : float option;
  mutable completed : int;
  mutable interrupted : int;
  mutable forward_ns : float;
  mutable wasted_ns : float;
  mutable spans : float list;
}

let create () =
  {
    open_region = None;
    last_power_ns = None;
    completed = 0;
    interrupted = 0;
    forward_ns = 0.0;
    wasted_ns = 0.0;
    spans = [];
  }

let feed st { Trace_reader.ns; event } =
  match event with
  | Ev.Region_begin { seq; _ } -> st.open_region <- Some (seq, ns)
  | Ev.Power_down _ | Ev.Death _ -> st.last_power_ns <- Some ns
  | Ev.Region_end _ -> (
    match st.open_region with
    | None -> ()
    | Some (_, begin_ns) ->
      let span = max 0.0 (ns -. begin_ns) in
      st.open_region <- None;
      if st.last_power_ns = Some ns then begin
        st.interrupted <- st.interrupted + 1;
        st.wasted_ns <- st.wasted_ns +. span
      end
      else begin
        st.completed <- st.completed + 1;
        st.forward_ns <- st.forward_ns +. span;
        st.spans <- span :: st.spans
      end)
  | _ -> ()

let finish st =
  let latencies = Array.of_list st.spans in
  Array.sort compare latencies;
  {
    completed = st.completed;
    interrupted = st.interrupted;
    forward_ns = st.forward_ns;
    wasted_ns = st.wasted_ns;
    latencies;
  }

let of_entries entries =
  let st = create () in
  List.iter (feed st) entries;
  finish st

let attempts (t : t) = t.completed + t.interrupted

(* Share of executed region time that was forward progress (1.0 when
   nothing was interrupted or nothing ran). *)
let forward_fraction (t : t) =
  let total = t.forward_ns +. t.wasted_ns in
  if total <= 0.0 then 1.0 else t.forward_ns /. total

let percentile t p =
  let n = Array.length t.latencies in
  if n = 0 then 0.0
  else
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    t.latencies.(max 0 (min (n - 1) i))

let mean_latency t =
  let n = Array.length t.latencies in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 t.latencies /. float_of_int n
