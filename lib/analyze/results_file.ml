(* Reader for the results JSONL files (Sweep_exp.Results schema v1/v2):
   one record per key, last line wins when a file accumulated several
   runs of the same job.  Adds the derived total_ns / total_joules
   series next to the raw fields. *)

module Results = Sweep_exp.Results

type record = {
  key : string;
  experiment : string;
  design : string;
  bench : string;
  metrics : (string * float) list;
}

let sum_opt metrics names =
  let vals = List.filter_map (fun n -> List.assoc_opt n metrics) names in
  if vals = [] then None else Some (List.fold_left ( +. ) 0.0 vals)

let with_derived metrics =
  let add name names metrics =
    match sum_opt metrics names with
    | Some v -> metrics @ [ (name, v) ]
    | None -> metrics
  in
  metrics
  |> add "total_ns" [ "on_ns"; "off_ns" ]
  |> add "total_joules"
       [ "compute_joules"; "backup_joules"; "restore_joules";
         "quiescent_joules" ]

let record_of_line j =
  match Json.string_member "key" j with
  | None -> None
  | Some key ->
    let str k = Option.value ~default:"" (Json.string_member k j) in
    let metrics =
      List.filter_map
        (fun (name, _) ->
          Option.map (fun v -> (name, v)) (Json.float_member name j))
        Results.numeric_fields
    in
    Some
      {
        key;
        experiment = str "experiment";
        design = str "design";
        bench = str "bench";
        metrics = with_derived metrics;
      }

let load path =
  let ic = try Ok (open_in path) with Sys_error e -> Error e in
  match ic with
  | Error e -> Error e
  | Ok ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let records = ref [] in
        let malformed = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Json.parse line with
               | Ok j -> (
                 match record_of_line j with
                 | Some r ->
                   (* last line per key wins *)
                   records :=
                     r :: List.filter (fun x -> x.key <> r.key) !records
                 | None -> incr malformed)
               | Error _ -> incr malformed
           done
         with End_of_file -> ());
        if !records = [] then
          Error
            (Printf.sprintf "%s: no parseable result lines (%d malformed)"
               path !malformed)
        else Ok (List.rev !records))
