(* Reader for the --metrics-out snapshot (Sweep_obs.Metrics.render_json
   output): canonical series name -> sample. *)

type sample =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }

type t = (string * sample) list

let bound_of = function
  | Json.Num f -> Some f
  | Json.Str "+inf" -> Some infinity
  | _ -> None

let sample_of j =
  let ( let* ) = Option.bind in
  let* ty = Json.string_member "type" j in
  match ty with
  | "counter" ->
    let* v = Json.int_member "value" j in
    Some (Counter v)
  | "gauge" ->
    let* v = Json.float_member "value" j in
    Some (Gauge v)
  | "histogram" ->
    let* count = Json.int_member "count" j in
    let* sum = Json.float_member "sum" j in
    let* buckets = Json.list_member "buckets" j in
    let* buckets =
      List.fold_left
        (fun acc b ->
          let* acc = acc in
          let* le = Option.bind (Json.member "le" b) bound_of in
          let* n = Json.int_member "n" b in
          Some ((le, n) :: acc))
        (Some []) buckets
    in
    Some (Histogram { count; sum; buckets = List.rev buckets })
  | _ -> None

let of_json j =
  match
    (Json.int_member "schema_version" j, Json.member "metrics" j)
  with
  | Some v, Some (Json.Obj series)
    when v = Sweep_obs.Metrics.json_schema_version ->
    Ok
      (List.filter_map
         (fun (name, s) -> Option.map (fun s -> (name, s)) (sample_of s))
         series)
  | Some v, Some _ when v <> Sweep_obs.Metrics.json_schema_version ->
    Error (Printf.sprintf "unsupported metrics schema_version %d" v)
  | _ -> Error "not a metrics snapshot (missing schema_version/metrics)"

let load path =
  match Json.parse_file path with
  | Error e -> Error (path ^ ": " ^ e)
  | Ok j -> (
    match of_json j with Error e -> Error (path ^ ": " ^ e) | Ok t -> Ok t)

(* Numeric projection for diffing: counters and gauges as-is,
   histograms as their count and sum. *)
let numeric t =
  List.concat_map
    (fun (name, s) ->
      match s with
      | Counter n -> [ (name, float_of_int n) ]
      | Gauge v -> [ (name, v) ]
      | Histogram { count; sum; _ } ->
        [ (name ^ ".count", float_of_int count); (name ^ ".sum", sum) ])
    t
