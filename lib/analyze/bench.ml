(* The perf-regression pipeline's workload matrix and history file.

   [jobs] pins a small design × benchmark matrix (the CI smoke set);
   [run] executes it through the parallel executor and projects every
   summary onto the gated numeric fields of the results schema.  The
   history file (BENCH_sweepcache.json) accumulates one entry per
   commit; [append] rewrites it atomically (tmp + rename) so an
   interrupted CI job can't truncate the history.  The simulator is
   fully deterministic, so exact values — not statistics — are what the
   diff gate compares. *)

module Results = Sweep_exp.Results
module Jobs = Sweep_exp.Jobs
module Exp_common = Sweep_exp.Exp_common

let schema_version = 2

(* v1 entries predate the throughput track; they carry the same result
   fields and stay diffable, so the loader accepts both. *)
let accepted_schema_versions = [ 1; 2 ]

(* Bump the matrix id whenever the job set or any default the jobs
   depend on changes — entries with a different id must not be diffed
   against each other. *)
let matrix_id = "sweepcache-smoke-v1"

let settings () =
  [
    Exp_common.setting Sweep_sim.Harness.Nvp;
    Exp_common.setting Sweep_sim.Harness.Replay;
    Exp_common.sweep_empty_bit;
  ]

let benches = [ "sha"; "dijkstra"; "fft" ]
let scale = 0.1
let power = Jobs.harvested Sweep_energy.Power_trace.Rf_home

let jobs () =
  Jobs.matrix ~exp:"bench" ~scale ~powers:[ power ] (settings ()) benches

(* ---------------- running the matrix ---------------- *)

(* One executed job, projected onto the schema's numeric fields (minus
   wall-clock noise).  Reuses the results-line renderer so the bench
   file and the JSONL sink can never disagree about a value. *)
let fields_of_summary job summary =
  let line =
    Results.json_line ~ts:0.0 ~exp:"bench" ~key:(Jobs.key job)
      ~design:
        (Sweep_sim.Harness.design_name job.Jobs.setting.Exp_common.design)
      ~label:job.Jobs.setting.Exp_common.label
      ~power:(Jobs.power_id job.Jobs.power)
      ~bench:job.Jobs.bench ~scale:job.Jobs.scale ~elapsed_s:0.0 summary
  in
  match Json.parse line with
  | Error e -> failwith ("bench: internal render error: " ^ e)
  | Ok j ->
    List.filter_map
      (fun (name, _) ->
        if name = "elapsed_s" then None
        else Option.map (fun v -> (name, v)) (Json.float_member name j))
      Results.numeric_fields

let run ?workers () : Diff.run =
  let jobs = jobs () in
  Sweep_exp.Executor.execute ?workers jobs;
  List.map
    (fun job ->
      let key = Jobs.key job in
      match Results.find key with
      | Some summary -> (key, fields_of_summary job summary)
      | None -> failwith ("bench: executor produced no summary for " ^ key))
    jobs

(* ---------------- wall-clock throughput ---------------- *)

(* Simulated instructions per wall-second, measured sequentially per
   job (the parallel executor would make jobs contend for cores and
   understate each one).  Each job's compiled program is built outside
   the timed region; machine construction + the driver run are inside
   it, repeated until [min_seconds] of wall time accumulates so fast
   simulators still get a stable number.  Unlike the result fields this
   is host-dependent and noisy, so it is stored in a separate entry
   member and gated by a coarse ratio, never by the exact-value diff. *)
let measure_job_ips ?(min_seconds = 0.2) job =
  let s = job.Jobs.setting in
  let w = Sweep_workloads.Registry.find job.Jobs.bench in
  let ast = Sweep_workloads.Workload.program ~scale:job.Jobs.scale w in
  let compiled =
    Sweep_sim.Harness.compile ~options:s.Exp_common.options
      s.Exp_common.design ast
  in
  let prog = compiled.Sweep_compiler.Pipeline.program in
  let power = Jobs.to_power job.Jobs.power in
  let instructions = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_seconds do
    let m = Sweep_sim.Harness.machine ~config:s.Exp_common.config
        s.Exp_common.design prog
    in
    let t0 = Unix.gettimeofday () in
    let outcome = Sweep_sim.Driver.run m ~power in
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    instructions := !instructions + outcome.Sweep_sim.Driver.instructions
  done;
  float_of_int !instructions /. !elapsed

let measure_throughput ?min_seconds () =
  List.map
    (fun job -> (Jobs.key job, measure_job_ips ?min_seconds job))
    (jobs ())

let geomean = function
  | [] -> 0.0
  | ips ->
    let n = float_of_int (List.length ips) in
    exp (List.fold_left (fun a (_, v) -> a +. log v) 0.0 ips /. n)

(* ---------------- history file ---------------- *)

type entry = {
  ts : string;
  commit : string;
  results : Diff.run;
  throughput : (string * float) list;
}

let entry_json e =
  Json.Obj
    ([
       ("ts", Json.Str e.ts);
       ("commit", Json.Str e.commit);
       ( "results",
         Json.Obj
           (List.map
              (fun (key, fields) ->
                ( key,
                  Json.Obj
                    (List.map (fun (n, v) -> (n, Json.Num v)) fields) ))
              e.results) );
     ]
    @
    if e.throughput = [] then []
    else
      [
        ( "throughput",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) e.throughput) );
      ])

let file_json entries =
  Json.Obj
    [
      ("schema_version", Json.Num (float_of_int schema_version));
      ("matrix_id", Json.Str matrix_id);
      ("entries", Json.List (List.map entry_json entries));
    ]

let entry_of_json j =
  let ( let* ) = Option.bind in
  let* ts = Json.string_member "ts" j in
  let* commit = Json.string_member "commit" j in
  let* results = Json.member "results" j in
  let* keyed = Json.to_obj results in
  let results =
    List.map
      (fun (key, fields) ->
        ( key,
          match Json.to_obj fields with
          | Some kvs ->
            List.filter_map
              (fun (n, v) -> Option.map (fun f -> (n, f)) (Json.to_float v))
              kvs
          | None -> [] ))
      keyed
  in
  let throughput =
    match Json.member "throughput" j with
    | Some tj -> (
      match Json.to_obj tj with
      | Some kvs ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
          kvs
      | None -> [])
    | None -> []
  in
  Some { ts; commit; results; throughput }

let load_entries path =
  if not (Sys.file_exists path) then Ok []
  else
    match Json.parse_file path with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok j -> (
      match (Json.int_member "schema_version" j, Json.string_member "matrix_id" j)
      with
      | Some v, _ when not (List.mem v accepted_schema_versions) ->
        Error (Printf.sprintf "%s: unsupported schema_version %d" path v)
      | _, Some id when id <> matrix_id ->
        Error
          (Printf.sprintf
             "%s: matrix %s does not match current %s — regenerate the \
              baseline"
             path id matrix_id)
      | Some _, Some _ ->
        Ok
          (List.filter_map entry_of_json
             (Option.value ~default:[] (Json.list_member "entries" j)))
      | _ -> Error (path ^ ": not a bench history file"))

let append ~path entry =
  match load_entries path with
  | Error e -> Error e
  | Ok entries ->
    let body = Json.render (file_json (entries @ [ entry ])) in
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc body;
        output_char oc '\n');
    Sys.rename tmp path;
    Ok (List.length entries + 1)

let latest path =
  match load_entries path with
  | Error e -> Error e
  | Ok [] -> Error (path ^ ": empty bench history")
  | Ok entries -> Ok (List.nth entries (List.length entries - 1))
