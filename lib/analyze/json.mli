(** Minimal JSON parser for the analysis layer — just the grammar our
    own sinks emit (JSONL trace lines, Chrome traces, metrics
    snapshots, results lines, BENCH files).  No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-string parse; [Error] carries a short message with offset. *)

val parse_file : string -> (t, string) result

val render : t -> string
(** Compact serialisation; integral numbers print without a fraction,
    others as [%.17g] so parse/render round-trips. *)

val escape_string : string -> string
(** Quoted, escaped JSON string literal. *)

(** {2 Accessors} — all total, [None]/[Some] instead of exceptions. *)

val member : string -> t -> t option
val to_float : t -> float option

val to_int : t -> int option
(** Integral [Num] only. *)

val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
val float_member : string -> t -> float option
val int_member : string -> t -> int option
val string_member : string -> t -> string option
val bool_member : string -> t -> bool option
val list_member : string -> t -> t list option
