(* Minimal JSON parser for the analysis layer: just enough for the
   grammar our own sinks emit (JSONL trace lines, Chrome traces, metrics
   snapshots, results lines, BENCH files).  Recursive descent over a
   string; no external dependency, mirroring the validator in
   test/t_obs.ml. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  let n = String.length st.s in
  while
    st.pos < n
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some ('0' .. '9' as c) -> v := (!v * 16) + (Char.code c - Char.code '0')
    | Some ('a' .. 'f' as c) ->
      v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
    | Some ('A' .. 'F' as c) ->
      v := (!v * 16) + (Char.code c - Char.code 'A' + 10)
    | _ -> fail st "bad \\u escape");
    st.pos <- st.pos + 1
  done;
  !v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek st with
      | Some '"' -> Buffer.add_char b '"'; st.pos <- st.pos + 1; go ()
      | Some '\\' -> Buffer.add_char b '\\'; st.pos <- st.pos + 1; go ()
      | Some '/' -> Buffer.add_char b '/'; st.pos <- st.pos + 1; go ()
      | Some 'b' -> Buffer.add_char b '\b'; st.pos <- st.pos + 1; go ()
      | Some 'f' -> Buffer.add_char b '\012'; st.pos <- st.pos + 1; go ()
      | Some 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1; go ()
      | Some 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1; go ()
      | Some 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1; go ()
      | Some 'u' ->
        st.pos <- st.pos + 1;
        let v = parse_hex4 st in
        (* Our sinks only \u-escape control characters; decode the BMP
           code point as UTF-8 so round-trips are lossless. *)
        if v < 0x80 then Buffer.add_char b (Char.chr v)
        else if v < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (v lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (v lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
        end;
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      Buffer.add_char b c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let n = String.length st.s in
  let advance_while pred =
    while st.pos < n && pred st.s.[st.pos] do
      st.pos <- st.pos + 1
    done
  in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  let d0 = st.pos in
  advance_while (function '0' .. '9' -> true | _ -> false);
  if st.pos = d0 then fail st "expected digit";
  if peek st = Some '.' then begin
    st.pos <- st.pos + 1;
    let d1 = st.pos in
    advance_while (function '0' .. '9' -> true | _ -> false);
    if st.pos = d1 then fail st "expected fraction digit"
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    st.pos <- st.pos + 1;
    (match peek st with
    | Some ('+' | '-') -> st.pos <- st.pos + 1
    | _ -> ());
    let d2 = st.pos in
    advance_while (function '0' .. '9' -> true | _ -> false);
    if st.pos = d2 then fail st "expected exponent digit"
  | _ -> ());
  float_of_string (String.sub st.s start (st.pos - start))

let literal st w v =
  let n = String.length w in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = w
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st ("expected " ^ w)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | _ -> fail st "unexpected character"

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage" else Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let body =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse body

(* Rendering — compact, stable order (field order is whatever the
   value carries), numbers as %.17g so parse/render round-trips. *)

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let render_num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec render = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> render_num f
  | Str s -> escape_string s
  | List l -> "[" ^ String.concat "," (List.map render l) ^ "]"
  | Obj o ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> escape_string k ^ ":" ^ render v) o)
    ^ "}"

(* Accessors *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None

let float_member k j = Option.bind (member k j) to_float
let int_member k j = Option.bind (member k j) to_int
let string_member k j = Option.bind (member k j) to_string
let bool_member k j = Option.bind (member k j) to_bool
let list_member k j = Option.bind (member k j) to_list
