(* Assemble the derived views of one trace (plus optional metrics
   snapshot and results JSONL) into a report, rendered as aligned text,
   CSV, or markdown.  Each section is a small table so all three
   renderers share one structure. *)

type format = Text | Csv | Markdown

type section = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

type t = { source : string; warnings : string list; sections : section list }

(* ---------------- value formatting ---------------- *)

let fmt_ns ns =
  if Float.abs ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if Float.abs ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let fmt_pct x = Printf.sprintf "%.1f%%" x
let fmt_uj j = Printf.sprintf "%.3f uJ" (j *. 1e6)
let fmt_int = string_of_int
let fmt_f g = Printf.sprintf "%g" g

(* ---------------- section builders ---------------- *)

(* Heartbeat coverage: [beats] total, and [gaps] — consecutive beats
   whose instruction delta exceeds the advertised cadence, i.e. spans
   where the run stopped beating (an overloaded sink, a wedged
   worker).  A negative delta is a new run in the same trace, not a
   gap. *)
let heartbeat_stats entries =
  let beats, gaps, _ =
    List.fold_left
      (fun (beats, gaps, prev) e ->
        match e.Trace_reader.event with
        | Sweep_obs.Event.Heartbeat { every; instructions; _ } ->
          let gaps =
            match prev with
            | Some p when instructions > p && instructions - p > every ->
              gaps + 1
            | _ -> gaps
          in
          (beats + 1, gaps, Some instructions)
        | _ -> (beats, gaps, prev))
      (0, 0, None) entries
  in
  (beats, gaps)

let trace_section path (stats : Trace_reader.stats) ~heartbeats:(beats, gaps) =
  (* Heartbeat columns only appear when the trace has beats, so
     reports of heartbeat-free traces are byte-identical to before. *)
  let hb_headers, hb_cells =
    if beats = 0 then ([], [])
    else ([ "heartbeats"; "hb gaps" ], [ fmt_int beats; fmt_int gaps ])
  in
  {
    title = "Trace";
    headers = [ "events"; "malformed"; "dropped" ] @ hb_headers;
    rows =
      [
        [ fmt_int stats.parsed; fmt_int stats.malformed; fmt_int stats.dropped ]
        @ hb_cells;
      ];
    notes =
      (Printf.sprintf "source: %s" path)
      ::
      (if stats.dropped > 0 then
         [
           Printf.sprintf
             "TRUNCATED: %d events were dropped before the trace was \
              written; every figure below is a lower bound."
             stats.dropped;
         ]
       else [])
      @
      if gaps > 0 then
        [
          Printf.sprintf
            "%d heartbeat gap(s): spans where consecutive beats are more \
             than one cadence apart."
            gaps;
        ]
      else [];
  }

let region_section (r : Region_view.t) =
  {
    title = "Regions";
    headers =
      [ "completed"; "interrupted"; "forward time"; "re-executed time";
        "forward %"; "mean"; "p50"; "p95"; "max" ];
    rows =
      [
        [
          fmt_int r.Region_view.completed;
          fmt_int r.Region_view.interrupted;
          fmt_ns r.Region_view.forward_ns;
          fmt_ns r.Region_view.wasted_ns;
          fmt_pct (100.0 *. Region_view.forward_fraction r);
          fmt_ns (Region_view.mean_latency r);
          fmt_ns (Region_view.percentile r 50.0);
          fmt_ns (Region_view.percentile r 95.0);
          fmt_ns (Region_view.percentile r 100.0);
        ];
      ];
    notes =
      [
        "interrupted = regions cut by a power failure; their time \
         re-executes after reboot (wasted work).";
      ];
  }

let stall_section (s : Stall_view.t) =
  let horizon = Stall_view.horizon_ns s in
  let pct_of ns =
    if horizon <= 0.0 then "-" else fmt_pct (100.0 *. ns /. horizon)
  in
  {
    title = "Stalls & buffer traffic";
    headers = [ "cause"; "count"; "time"; "% of horizon" ];
    rows =
      [
        [ "WAW stall (s4.3)"; fmt_int s.Stall_view.waw_stalls;
          fmt_ns s.Stall_view.waw_ns; pct_of s.Stall_view.waw_ns ];
        [ "structural wait (s3.3)"; fmt_int s.Stall_view.waits;
          fmt_ns s.Stall_view.wait_ns; pct_of s.Stall_view.wait_ns ];
        [ "buffer search (s4.4)"; fmt_int s.Stall_view.searches;
          Printf.sprintf "%s scanned/search" (fmt_f (Stall_view.avg_scanned s));
          fmt_pct (100.0 *. Stall_view.hit_rate s) ^ " hit" ];
        [ "empty-bit bypass"; fmt_int s.Stall_view.bypasses;
          fmt_pct (100.0 *. Stall_view.bypass_rate s) ^ " of misses"; "-" ];
        [ "load miss"; fmt_int s.Stall_view.load_misses; "-"; "-" ];
        [ "store miss"; fmt_int s.Stall_view.store_misses; "-"; "-" ];
        [ "writeback"; fmt_int s.Stall_view.writebacks; "-"; "-" ];
      ];
    notes =
      [ Printf.sprintf "trace horizon: %s" (fmt_ns horizon) ];
  }

let buffer_sections (b : Buffer_view.t) =
  let per_buf =
    {
      title = "Persist-buffer occupancy";
      headers =
        [ "buffer"; "cycles"; "fill"; "flush (s-p1)"; "drain (s-p2)";
          "busy"; "dead time" ];
      rows =
        List.map
          (fun pb ->
            [
              fmt_int pb.Buffer_view.buf;
              fmt_int pb.Buffer_view.cycles;
              fmt_ns pb.Buffer_view.fill_ns;
              fmt_ns pb.Buffer_view.flush_ns;
              fmt_ns pb.Buffer_view.drain_ns;
              fmt_ns (Buffer_view.busy_ns pb);
              fmt_ns pb.Buffer_view.dead_ns;
            ])
          b.Buffer_view.buffers;
      notes =
        [
          Printf.sprintf
            "region-level parallelism: %s with >=2 buffers busy (union busy %s)"
            (fmt_ns b.Buffer_view.overlap_ns)
            (fmt_ns b.Buffer_view.busy_union_ns);
        ];
    }
  in
  let hist = Buffer_view.dead_time_histogram b in
  let dead_hist =
    {
      title = "Phase dead-time histogram";
      headers = [ "gap <="; "gaps" ];
      rows =
        List.map
          (fun (bound, n) ->
            [ (if bound = infinity then "+inf" else fmt_ns bound); fmt_int n ])
          hist;
      notes =
        [ "gap = one buffer's drain end to its next fill start." ];
    }
  in
  [ per_buf; dead_hist ]

let power_sections (p : Power_view.t) (r : Region_view.t)
    (results : Results_file.record list option) =
  let outages =
    {
      title = "Outages & recovery";
      headers = [ "quantity"; "value" ];
      rows =
        [
          [ "power-downs"; fmt_int p.Power_view.power_downs ];
          [ "hard deaths"; fmt_int p.Power_view.deaths ];
          [ "reboots"; fmt_int p.Power_view.reboots ];
          [ "off time"; fmt_ns p.Power_view.off_ns ];
          [ "backups ok / failed";
            Printf.sprintf "%d / %d" p.Power_view.backups_ok
              p.Power_view.backups_failed ];
          [ "backup energy"; fmt_uj p.Power_view.backup_joules ];
          [ "restores"; fmt_int p.Power_view.restores ];
          [ "restore energy"; fmt_uj p.Power_view.restore_joules ];
          [ "replayed stores"; fmt_int p.Power_view.replayed_stores ];
          [ "backup lines"; fmt_int p.Power_view.backup_lines ];
        ]
        @ (if p.Power_view.injected_faults = 0 then []
           else
             (* Fault-injection attribution (sweepcheck): keep these rows
                out of ordinary reports so existing output stays stable. *)
             [
               [ "injected faults";
                 Printf.sprintf "%d (%d nested)" p.Power_view.injected_faults
                   p.Power_view.nested_faults ];
               [ "torn DMA lines";
                 Printf.sprintf "%d (%d words)" p.Power_view.torn_lines
                   p.Power_view.torn_words ];
               [ "stuck phase bits"; fmt_int p.Power_view.stuck_bits ];
             ]);
      notes = [];
    }
  in
  let recovery =
    {
      title = "Recovery cases (s4.2)";
      headers = [ "case"; "meaning"; "buffers"; "lines" ];
      rows =
        [
          [ "(0,0)"; "s-phase1 incomplete: discard";
            fmt_int p.Power_view.discarded_buffers;
            fmt_int p.Power_view.discarded_lines ];
          [ "(1,0)"; "s-phase2 incomplete: redo drain";
            fmt_int p.Power_view.redo_buffers;
            fmt_int p.Power_view.redo_lines ];
          [ "(1,1)"; "all drained: clean reboot";
            fmt_int p.Power_view.clean_reboots; "-" ];
        ];
      notes = [];
    }
  in
  let wasted_frac = 1.0 -. Region_view.forward_fraction r in
  let energy_rows =
    [
      [ "forward-progress time"; fmt_ns r.Region_view.forward_ns ];
      [ "re-executed (wasted) time"; fmt_ns r.Region_view.wasted_ns ];
      [ "backup + restore energy";
        fmt_uj (p.Power_view.backup_joules +. p.Power_view.restore_joules) ];
    ]
    @
    match results with
    | None -> []
    | Some records ->
      let compute =
        List.fold_left
          (fun acc rec_ ->
            acc
            +. Option.value ~default:0.0
                 (List.assoc_opt "compute_joules" rec_.Results_file.metrics))
          0.0 records
      in
      [
        [ "compute energy (results)"; fmt_uj compute ];
        [ "est. wasted compute energy"; fmt_uj (compute *. wasted_frac) ];
      ]
  in
  let energy =
    {
      title = "Forward progress vs wasted work";
      headers = [ "quantity"; "value" ];
      rows = energy_rows;
      notes =
        (if results = None then
           [
             "pass --results <file.jsonl> to split the run's measured \
              compute energy by these fractions.";
           ]
         else []);
    }
  in
  [ outages; recovery; energy ]

let results_section records =
  {
    title = "Run results (JSONL)";
    headers = [ "key"; "total"; "energy"; "instrs"; "nvm writes"; "miss %" ];
    rows =
      List.map
        (fun r ->
          let m k = List.assoc_opt k r.Results_file.metrics in
          let num f = function Some v -> f v | None -> "-" in
          [
            r.Results_file.key;
            num fmt_ns (m "total_ns");
            num fmt_uj (m "total_joules");
            num (fun v -> fmt_int (int_of_float v)) (m "instructions");
            num (fun v -> fmt_int (int_of_float v)) (m "nvm_writes");
            num (fun v -> fmt_pct (100.0 *. v)) (m "miss_rate");
          ])
        records;
    notes = [];
  }

(* Supervision + result-cache activity (supervised `--workers N` runs).
   The section only appears when the trace carries any of these events,
   so reports of single-process traces stay byte-identical. *)
let supervision_section entries =
  let spawns, deads, retries, hits =
    List.fold_left
      (fun (s, d, r, h) e ->
        match e.Trace_reader.event with
        | Sweep_obs.Event.Worker_spawn _ -> (s + 1, d, r, h)
        | Sweep_obs.Event.Worker_dead _ -> (s, d + 1, r, h)
        | Sweep_obs.Event.Job_retry _ -> (s, d, r + 1, h)
        | Sweep_obs.Event.Cache_hit _ -> (s, d, r, h + 1)
        | _ -> (s, d, r, h))
      (0, 0, 0, 0) entries
  in
  if spawns = 0 && deads = 0 && retries = 0 && hits = 0 then []
  else
    [
      {
        title = "Supervision & result cache";
        headers = [ "quantity"; "value" ];
        rows =
          [
            [ "worker spawns"; fmt_int spawns ];
            [ "worker deaths"; fmt_int deads ];
            [ "job retries"; fmt_int retries ];
            [ "result-cache hits"; fmt_int hits ];
          ];
        notes =
          (if deads > spawns then
             [ "more deaths than spawns: trace is truncated or merged." ]
           else []);
      };
    ]

let metrics_section (m : Metrics_file.t) =
  {
    title = "Metrics snapshot";
    headers = [ "series"; "value" ];
    rows =
      List.map
        (fun (name, s) ->
          [
            name;
            (match s with
            | Metrics_file.Counter n -> fmt_int n
            | Metrics_file.Gauge v -> fmt_f v
            | Metrics_file.Histogram { count; sum; _ } ->
              Printf.sprintf "count=%d sum=%g mean=%g" count sum
                (if count = 0 then 0.0 else sum /. float_of_int count));
          ])
        m;
    notes = [];
  }

(* ---------------- assembly ---------------- *)

let build ?metrics_path ?results_path ~trace_path () =
  match Trace_reader.read_all trace_path with
  | exception Sys_error e -> Error e
  | entries, stats ->
    if stats.Trace_reader.parsed = 0 then
      Error
        (Printf.sprintf
           "%s: no events parsed (%d malformed lines) — is this a JSONL \
            trace (sweepsim --trace-format jsonl)?"
           trace_path stats.Trace_reader.malformed)
    else begin
      let regions = Region_view.of_entries entries in
      let stalls = Stall_view.of_entries entries in
      let buffers = Buffer_view.of_entries entries in
      let power = Power_view.of_entries entries in
      let results =
        Option.map
          (fun p ->
            match Results_file.load p with
            | Ok r -> Ok r
            | Error e -> Error e)
          results_path
      in
      let metrics =
        Option.map
          (fun p ->
            match Metrics_file.load p with Ok m -> Ok m | Error e -> Error e)
          metrics_path
      in
      let warnings =
        (if stats.Trace_reader.dropped > 0 then
           [
             Printf.sprintf "trace truncated: %d events dropped"
               stats.Trace_reader.dropped;
           ]
         else [])
        @ (if stats.Trace_reader.malformed > 0 then
             [
               Printf.sprintf "%d malformed trace lines skipped"
                 stats.Trace_reader.malformed;
             ]
           else [])
        @ (match results with
          | Some (Error e) -> [ "results not loaded: " ^ e ]
          | _ -> [])
        @
        match metrics with
        | Some (Error e) -> [ "metrics not loaded: " ^ e ]
        | _ -> []
      in
      let results_ok =
        match results with Some (Ok r) -> Some r | _ -> None
      in
      let sections =
        [ trace_section trace_path stats ~heartbeats:(heartbeat_stats entries);
          region_section regions; stall_section stalls ]
        @ buffer_sections buffers
        @ power_sections power regions results_ok
        @ supervision_section entries
        @ (match results_ok with
          | Some r -> [ results_section r ]
          | None -> [])
        @
        match metrics with
        | Some (Ok m) -> [ metrics_section m ]
        | _ -> []
      in
      Ok { source = trace_path; warnings; sections }
    end

(* ---------------- rendering ---------------- *)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_text t =
  let b = Buffer.create 4096 in
  List.iter
    (fun w -> Buffer.add_string b (Printf.sprintf "WARNING: %s\n" w))
    t.warnings;
  List.iter
    (fun sec ->
      Buffer.add_string b (Printf.sprintf "\n== %s ==\n" sec.title);
      let table = sec.headers :: sec.rows in
      let cols =
        List.fold_left (fun acc row -> max acc (List.length row)) 0 table
      in
      let width = Array.make cols 0 in
      List.iter
        (List.iteri (fun i cell ->
             width.(i) <- max width.(i) (String.length cell)))
        table;
      let pad i cell =
        cell ^ String.make (max 0 (width.(i) - String.length cell)) ' '
      in
      List.iteri
        (fun ri row ->
          Buffer.add_string b "  ";
          (* pad for alignment but keep line endings clean *)
          let line = String.concat "  " (List.mapi pad row) in
          let n = ref (String.length line) in
          while !n > 0 && line.[!n - 1] = ' ' do decr n done;
          Buffer.add_string b (String.sub line 0 !n);
          Buffer.add_char b '\n';
          if ri = 0 then begin
            Buffer.add_string b "  ";
            Buffer.add_string b
              (String.concat "  "
                 (List.mapi (fun i _ -> String.make width.(i) '-') row));
            Buffer.add_char b '\n'
          end)
        table;
      List.iter
        (fun n -> Buffer.add_string b (Printf.sprintf "  %s\n" n))
        sec.notes)
    t.sections;
  Buffer.contents b

let render_csv t =
  let b = Buffer.create 4096 in
  List.iter
    (fun w -> Buffer.add_string b (Printf.sprintf "# WARNING: %s\n" w))
    t.warnings;
  List.iter
    (fun sec ->
      Buffer.add_string b (Printf.sprintf "# %s\n" sec.title);
      List.iter
        (fun row ->
          Buffer.add_string b (String.concat "," (List.map csv_cell row));
          Buffer.add_char b '\n')
        (sec.headers :: sec.rows);
      List.iter
        (fun n -> Buffer.add_string b (Printf.sprintf "# %s\n" n))
        sec.notes;
      Buffer.add_char b '\n')
    t.sections;
  Buffer.contents b

let md_cell s =
  String.concat "\\|" (String.split_on_char '|' s)

let render_markdown t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "# Report — %s\n" t.source);
  List.iter
    (fun w -> Buffer.add_string b (Printf.sprintf "\n> **Warning:** %s\n" w))
    t.warnings;
  List.iter
    (fun sec ->
      Buffer.add_string b (Printf.sprintf "\n## %s\n\n" sec.title);
      let row cells =
        "| " ^ String.concat " | " (List.map md_cell cells) ^ " |\n"
      in
      Buffer.add_string b (row sec.headers);
      Buffer.add_string b
        ("|" ^ String.concat "|" (List.map (fun _ -> "---") sec.headers)
       ^ "|\n");
      List.iter (fun r -> Buffer.add_string b (row r)) sec.rows;
      List.iter
        (fun n -> Buffer.add_string b (Printf.sprintf "\n%s\n" n))
        sec.notes)
    t.sections;
  Buffer.contents b

let render = function
  | Text -> render_text
  | Csv -> render_csv
  | Markdown -> render_markdown

let format_of_string = function
  | "text" -> Some Text
  | "csv" -> Some Csv
  | "md" | "markdown" -> Some Markdown
  | _ -> None
