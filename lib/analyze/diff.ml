(* Cross-run comparison with machine-readable verdicts: load two runs
   (results JSONL, a bench history file, or a metrics snapshot),
   compare every numeric series of every common key, and judge each
   delta against a percentage threshold using the per-field direction
   declared next to the results schema
   (Sweep_exp.Results.numeric_fields).  `Info fields are reported but
   never gate. *)

module Results = Sweep_exp.Results

type verdict = Regression | Improvement | Unchanged

type delta = {
  key : string;
  field : string;
  base : float;
  cur : float;
  delta_pct : float;
  direction : Results.direction;
  verdict : verdict;
}

type t = {
  threshold_pct : float;
  deltas : delta list;
  missing_in_cur : string list; (* keys only in the baseline *)
  missing_in_base : string list; (* keys only in the current run *)
}

(* A run is just key -> numeric series. *)
type run = (string * (string * float) list) list

(* Sentinel used when the baseline is zero and the current value is
   not: the relative change is undefined, so report an effectively
   infinite delta that always crosses the threshold. *)
let zero_base_sentinel = 1e9

(* ---------------- loading ---------------- *)

let run_of_results records =
  List.map
    (fun r -> (r.Results_file.key, r.Results_file.metrics))
    records

(* Bench history file (see Bench): take the most recent entry. *)
let run_of_bench j =
  match Json.list_member "entries" j with
  | None | Some [] -> Error "bench file has no entries"
  | Some entries -> (
    let last = List.nth entries (List.length entries - 1) in
    match Json.member "results" last with
    | Some (Json.Obj keyed) ->
      Ok
        (List.map
           (fun (key, fields) ->
             let metrics =
               match fields with
               | Json.Obj kvs ->
                 List.filter_map
                   (fun (name, v) ->
                     Option.map (fun f -> (name, f)) (Json.to_float v))
                   kvs
               | _ -> []
             in
             (key, Results_file.with_derived metrics))
           keyed)
    | _ -> Error "bench entry has no results object"
  )

(* Autodetect: a bench history file and a metrics snapshot are single
   JSON documents with a distinctive top-level member; anything else is
   treated as results JSONL. *)
let load path : (run, string) result =
  match Json.parse_file path with
  | Ok (Json.Obj _ as j) when Json.member "entries" j <> None -> (
    match run_of_bench j with
    | Ok r -> Ok r
    | Error e -> Error (path ^ ": " ^ e))
  | Ok (Json.Obj _ as j) when Json.member "metrics" j <> None -> (
    match Metrics_file.of_json j with
    | Ok m -> Ok [ ("metrics", Metrics_file.numeric m) ]
    | Error e -> Error (path ^ ": " ^ e))
  | Ok (Json.Obj _ as j) when Json.member "key" j <> None -> (
    (* single-line results JSONL parses as one record *)
    match Results_file.record_of_line j with
    | Some r -> Ok (run_of_results [ r ])
    | None -> Error (path ^ ": unrecognised record"))
  | _ -> (
    match Results_file.load path with
    | Ok records -> Ok (run_of_results records)
    | Error e -> Error e)

(* ---------------- comparison ---------------- *)

let delta_pct ~base ~cur =
  if base = 0.0 then
    if cur = 0.0 then 0.0
    else Float.of_int (compare cur 0.0) *. zero_base_sentinel
  else (cur -. base) /. Float.abs base *. 100.0

let judge ~threshold_pct ~direction ~pct =
  match direction with
  | `Info -> Unchanged
  | (`Lower_better | `Higher_better) as d ->
    if Float.abs pct <= threshold_pct then Unchanged
    else
      let worse =
        match d with
        | `Lower_better -> pct > 0.0
        | `Higher_better -> pct < 0.0
      in
      if worse then Regression else Improvement

let compare_runs ?(direction = Results.direction) ~threshold_pct (base : run)
    (cur : run) =
  let field_direction = direction in
  let keys_of r = List.map fst r in
  let missing_in_cur =
    List.filter (fun k -> not (List.mem_assoc k cur)) (keys_of base)
  in
  let missing_in_base =
    List.filter (fun k -> not (List.mem_assoc k base)) (keys_of cur)
  in
  let common =
    List.filter (fun (k, _) -> List.mem_assoc k cur) base
  in
  if common = [] then Error "no common keys between the two runs"
  else
    let deltas =
      List.concat_map
        (fun (key, bm) ->
          let cm = List.assoc key cur in
          List.filter_map
            (fun (field, bv) ->
              match List.assoc_opt field cm with
              | None -> None
              | Some cv ->
                (* elapsed_s is wall-clock noise: drop it entirely *)
                if field = "elapsed_s" then None
                else
                  let pct = delta_pct ~base:bv ~cur:cv in
                  let direction = field_direction field in
                  Some
                    {
                      key;
                      field;
                      base = bv;
                      cur = cv;
                      delta_pct = pct;
                      direction;
                      verdict = judge ~threshold_pct ~direction ~pct;
                    })
            bm)
        common
    in
    Ok { threshold_pct; deltas; missing_in_cur; missing_in_base }

let count v t =
  List.length (List.filter (fun d -> d.verdict = v) t.deltas)

let regressions t = List.filter (fun d -> d.verdict = Regression) t.deltas
let improvements t = List.filter (fun d -> d.verdict = Improvement) t.deltas
let has_regressions t = regressions t <> []

let diff_files ~threshold_pct base_path cur_path =
  match (load base_path, load cur_path) with
  | Error e, _ | _, Error e -> Error e
  | Ok base, Ok cur -> compare_runs ~threshold_pct base cur

(* ---------------- rendering ---------------- *)

let fmt_pct pct =
  if Float.abs pct >= zero_base_sentinel then
    if pct > 0.0 then "+inf%" else "-inf%"
  else Printf.sprintf "%+.2f%%" pct

let render_text t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let changed =
    List.filter (fun d -> d.verdict <> Unchanged) t.deltas
  in
  if changed = [] then
    line "no changes beyond %.2f%% on any gated series" t.threshold_pct
  else
    List.iter
      (fun d ->
        line "%s  %s.%s  %g -> %g  (%s)"
          (match d.verdict with
          | Regression -> "REGRESSION "
          | Improvement -> "improvement"
          | Unchanged -> "unchanged  ")
          d.key d.field d.base d.cur (fmt_pct d.delta_pct))
      changed;
  List.iter (fun k -> line "missing in current run: %s" k) t.missing_in_cur;
  List.iter (fun k -> line "new in current run: %s" k) t.missing_in_base;
  line "%d regression(s), %d improvement(s), %d series compared at %.2f%%"
    (count Regression t) (count Improvement t) (List.length t.deltas)
    t.threshold_pct;
  Buffer.contents b

let verdict_name = function
  | Regression -> "regression"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"

let render_json t =
  let esc = Json.escape_string in
  let delta_json d =
    Printf.sprintf
      "{\"key\":%s,\"field\":%s,\"base\":%.17g,\"cur\":%.17g,\
       \"delta_pct\":%.17g,\"direction\":\"%s\",\"verdict\":\"%s\"}"
      (esc d.key) (esc d.field) d.base d.cur d.delta_pct
      (match d.direction with
      | `Lower_better -> "lower_better"
      | `Higher_better -> "higher_better"
      | `Info -> "info")
      (verdict_name d.verdict)
  in
  let changed = List.filter (fun d -> d.verdict <> Unchanged) t.deltas in
  Printf.sprintf
    "{\"schema_version\":1,\"threshold_pct\":%.17g,\
     \"regressions\":%d,\"improvements\":%d,\"compared\":%d,\
     \"missing_in_cur\":[%s],\"missing_in_base\":[%s],\
     \"deltas\":[%s]}"
    t.threshold_pct (count Regression t) (count Improvement t)
    (List.length t.deltas)
    (String.concat "," (List.map esc t.missing_in_cur))
    (String.concat "," (List.map esc t.missing_in_base))
    (String.concat "," (List.map delta_json changed))
