(** Reader and report renderer for sweeptune's output files.

    [sweeptune explore] writes two JSONL artifacts: the journal (one
    line per evaluated (point, bench) cell) and the frontier (one line
    per Pareto-optimal design point).  This module parses both
    generically — the analysis layer sits below [sweepcache.tune], so it
    reads the schema, not the types — and renders them as a {!Report}:
    the frontier table plus one per-axis sensitivity section for each
    design-space axis, each mapped to the paper figure it reproduces
    (§6.8 Fig. 8 cache geometry, §6.6 Tab. 2/Fig. 9 capacitor, §6.7
    Fig. 10 power trace, §6.4 store cap, §6.9 buffer capacity /
    hardware cost). *)

type entry = {
  id : string;
  cache_bytes : int;
  assoc : int;
  buffer_entries : int;
  store_cap : int;
  max_unroll : int;
  farads : float;
  trace : string;
  benches : string list;
  runtime_ns : float;
  nvm_writes : float;
  hw_bits : int;
}
(** One frontier line. *)

type cell = {
  c_cache_bytes : int;
  c_assoc : int;
  c_buffer_entries : int;
  c_store_cap : int;
  c_max_unroll : int;
  c_farads : float;
  c_trace : string;
  bench : string;
  c_runtime_ns : float;
  c_nvm_writes : int;
  completed : bool;
  failed : bool;
}
(** One journal line. *)

val load_frontier : string -> (entry list * string list, string) result
(** Entries in file order plus warnings (skipped lines with an
    unexpected schema version). *)

val load_journal : string -> (cell list * string list, string) result

val report : ?journal:cell list -> source:string -> entry list -> Report.t
(** The frontier table, then — when journal cells are supplied — one
    sensitivity section per axis with at least two observed values:
    cells grouped by axis value with geomean runtime and mean NVM
    writes over completed cells. *)
