(** Reader for crash flight-recorder artifacts
    ({!Sweep_obs.Flight.dump} output) — the header naming the failed
    job, the ring's event tail, and the metrics snapshot taken at dump
    time.  Rendered by [sweeptrace postmortem]. *)

type header = {
  schema_version : int;
  job : string;
  error : string;
  backtrace : string;
  events : int;   (** ring occupancy at dump time *)
  dropped : int;  (** events lost to ring overflow before the dump *)
}

type t = {
  header : header;
  entries : Trace_reader.entry list;  (** ring tail, oldest first *)
  malformed : int;
  metrics : Metrics_file.t option;
}

val load : string -> (t, string) result
(** [Error] on a missing file, a non-postmortem first line, or an
    unsupported schema version; malformed event lines only count. *)

val report : ?tail:int -> source:string -> t -> Report.t
(** Render as report sections: the failure header, the last [tail]
    (default 25) events, and the metrics snapshot if present. *)
