(** Render the derived views of one trace — regions, stalls, buffer
    occupancy, outage/recovery accounting — plus an optional metrics
    snapshot and results JSONL, as text, CSV, or markdown.  One
    [section] is one small table so all three renderers share the same
    structure. *)

type format = Text | Csv | Markdown

type section = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

type t = { source : string; warnings : string list; sections : section list }

val build :
  ?metrics_path:string ->
  ?results_path:string ->
  trace_path:string ->
  unit ->
  (t, string) result
(** Read and analyse [trace_path] (a JSONL trace from
    [sweepsim --trace --trace-format jsonl]).  A dropped-events count in
    the trace becomes a truncation warning; an unreadable metrics or
    results side-file degrades to a warning rather than an error. *)

val render : format -> t -> string

val format_of_string : string -> format option
(** ["text"], ["csv"], ["md"]/["markdown"]. *)
