(** Per-region accounting from a trace: forward progress vs wasted
    (re-executed) work, and the completed-region latency distribution.

    A [Region_end] whose timestamp equals the last power event's is an
    interruption — the driver emits [Power_down]/[Death] before the
    machine closes the cut region at the same nanosecond — so its span
    re-executes after reboot (SweepCache §4.2's re-execution cost). *)

type t = {
  completed : int;
  interrupted : int;
  forward_ns : float;   (** execution time inside completed regions *)
  wasted_ns : float;    (** execution time inside interrupted regions *)
  latencies : float array;  (** completed-region spans, ascending *)
}

val of_entries : Trace_reader.entry list -> t
val attempts : t -> int

val forward_fraction : t -> float
(** Share of executed region time that was forward progress; 1.0 when
    nothing ran or nothing was interrupted. *)

val percentile : t -> float -> float
(** [percentile t 95.0]; 0 when no region completed. *)

val mean_latency : t -> float
