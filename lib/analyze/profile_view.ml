(* Reader and renderer for the per-PC attribution profiles that
   [sweepsim --attrib] / [sweepexp --attrib-dir] write
   (Sweep_sim.Profile, schema_version 1): load the JSON table back
   into a typed record, print top-N and per-function / per-opcode
   breakdowns, and diff two profiles through the generic Diff
   machinery with a profile-specific direction map (time, energy,
   wear, and re-execution are all lower-better; retirement counts are
   informational). *)

module Table = Sweep_util.Table

type row = {
  pc : int;
  op : string;
  label : string;
  label_off : int;
  func : string;
  count : int;
  forward : int;
  reexec : int;
  crashes : int;
  ns : float;
  stall_ns : float;
  joules : float;
  backup_joules : float;
  restore_joules : float;
  ckpt_ns : float;
  nvm_writes : int;
  ckpt_nvm_writes : int;
  cache_misses : int;
}

type totals = {
  instructions : int;
  t_reexec : int;
  t_forward : int;
  t_nvm_writes : int;
  t_ckpt_nvm_writes : int;
  t_cache_misses : int;
  t_crashes : int;
  t_ns : float;
  t_stall_ns : float;
  t_joules : float;
  t_backup_joules : float;
  t_restore_joules : float;
  t_ckpt_ns : float;
}

type t = {
  design : string;
  bench : string;
  scale : float;
  key : string;
  totals : totals;
  rows : row list;
}

(* ---------------- loading ---------------- *)

exception Bad of string

let req_int name j =
  match Json.int_member name j with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing integer field %S" name))

let req_float name j =
  match Json.float_member name j with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing numeric field %S" name))

let req_str name j =
  match Json.string_member name j with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing string field %S" name))

let row_of_json j =
  {
    pc = req_int "pc" j;
    op = req_str "op" j;
    label = req_str "label" j;
    label_off = req_int "label_off" j;
    func = req_str "func" j;
    count = req_int "count" j;
    forward = req_int "forward" j;
    reexec = req_int "reexec" j;
    crashes = req_int "crashes" j;
    ns = req_float "ns" j;
    stall_ns = req_float "stall_ns" j;
    joules = req_float "joules" j;
    backup_joules = req_float "backup_joules" j;
    restore_joules = req_float "restore_joules" j;
    ckpt_ns = req_float "ckpt_ns" j;
    nvm_writes = req_int "nvm_writes" j;
    ckpt_nvm_writes = req_int "ckpt_nvm_writes" j;
    cache_misses = req_int "cache_misses" j;
  }

let totals_of_json j =
  {
    instructions = req_int "instructions" j;
    t_reexec = req_int "reexec" j;
    t_forward = req_int "forward" j;
    t_nvm_writes = req_int "nvm_writes" j;
    t_ckpt_nvm_writes = req_int "ckpt_nvm_writes" j;
    t_cache_misses = req_int "cache_misses" j;
    t_crashes = req_int "crashes" j;
    t_ns = req_float "ns" j;
    t_stall_ns = req_float "stall_ns" j;
    t_joules = req_float "joules" j;
    t_backup_joules = req_float "backup_joules" j;
    t_restore_joules = req_float "restore_joules" j;
    t_ckpt_ns = req_float "ckpt_ns" j;
  }

let of_json j =
  try
    (match Json.string_member "kind" j with
    | Some "sweepcache-profile" -> ()
    | Some k -> raise (Bad (Printf.sprintf "kind %S is not a profile" k))
    | None -> raise (Bad "missing \"kind\" member"));
    (match Json.int_member "schema_version" j with
    | Some 1 -> ()
    | Some v -> raise (Bad (Printf.sprintf "unsupported schema_version %d" v))
    | None -> raise (Bad "missing \"schema_version\""));
    let totals =
      match Json.member "totals" j with
      | Some tj -> totals_of_json tj
      | None -> raise (Bad "missing \"totals\"")
    in
    let rows =
      match Json.list_member "rows" j with
      | Some l -> List.map row_of_json l
      | None -> raise (Bad "missing \"rows\"")
    in
    Ok
      {
        design = Option.value ~default:"" (Json.string_member "design" j);
        bench = Option.value ~default:"" (Json.string_member "bench" j);
        scale = Option.value ~default:1.0 (Json.float_member "scale" j);
        key = Option.value ~default:"" (Json.string_member "key" j);
        totals;
        rows;
      }
  with Bad msg -> Error msg

let load path =
  match Json.parse_file path with
  | Error e -> Error (path ^ ": " ^ e)
  | Ok j -> (
    match of_json j with Ok p -> Ok p | Error e -> Error (path ^ ": " ^ e))

(* ---------------- derived metrics ---------------- *)

let row_time r = r.ns +. r.ckpt_ns +. r.stall_ns
let row_energy r = r.joules +. r.backup_joules +. r.restore_joules
let row_wear r = r.nvm_writes + r.ckpt_nvm_writes

(* ---------------- rendering ---------------- *)

let pct part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let summary_text t =
  let b = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  let tt = t.totals in
  let ident =
    List.filter
      (fun s -> s <> "")
      [
        (if t.bench = "" then "" else Printf.sprintf "bench=%s" t.bench);
        (if t.design = "" then "" else Printf.sprintf "design=%s" t.design);
        Printf.sprintf "scale=%g" t.scale;
        (if t.key = "" then "" else Printf.sprintf "key=%s" t.key);
      ]
  in
  line "profile  %s" (String.concat "  " ident);
  line "instructions  %d retired = %d forward + %d re-executed (%.2f%%), %d crash(es)"
    tt.instructions tt.t_forward tt.t_reexec
    (pct (float_of_int tt.t_reexec) (float_of_int tt.instructions))
    tt.t_crashes;
  line "time          %.0f ns executing (%.0f ns of it stalled) + %.0f ns checkpoint/restore"
    tt.t_ns tt.t_stall_ns tt.t_ckpt_ns;
  line "energy        %.4g J compute + %.4g J backup + %.4g J restore"
    tt.t_joules tt.t_backup_joules tt.t_restore_joules;
  line "NVM writes    %d program + %d checkpoint;  cache misses %d"
    tt.t_nvm_writes tt.t_ckpt_nvm_writes tt.t_cache_misses;
  Buffer.contents b

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

(* One top-N table: rows sorted descending on [metric] (PC ascending
   breaks ties so output is deterministic), with each row's share and
   the running cumulative share of the whole-run total. *)
let top_table ~title ~top ~metric ~fmt ~total t =
  let rows =
    List.filter (fun r -> metric r > 0.0) t.rows
    |> List.stable_sort (fun a b ->
           match compare (metric b) (metric a) with
           | 0 -> compare a.pc b.pc
           | c -> c)
    |> take top
  in
  if rows = [] then Printf.sprintf "%s: nothing charged\n" title
  else begin
    let tbl =
      Table.create [ "pc"; "func"; "label+off"; "op"; title; "%"; "cum%" ]
    in
    let cum = ref 0.0 in
    List.iter
      (fun r ->
        let v = metric r in
        cum := !cum +. v;
        Table.add_row tbl
          [
            string_of_int r.pc;
            r.func;
            Printf.sprintf "%s+%d" r.label r.label_off;
            r.op;
            fmt v;
            Printf.sprintf "%.1f" (pct v total);
            Printf.sprintf "%.1f" (pct !cum total);
          ])
      rows;
    Printf.sprintf "top %d by %s\n%s" (List.length rows) title
      (Table.render tbl)
  end

(* Group rows under [group_of] and print each group's share of time,
   energy, wear, and re-execution — the per-view breakdown ISSUE's
   "where does it go" question wants answered at function and opcode
   granularity. *)
let rollup_table ~title ~group_of t =
  let tt = t.totals in
  let tbl : (string, float array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = group_of r in
      let acc =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
          let a = Array.make 5 0.0 in
          Hashtbl.replace tbl key a;
          a
      in
      acc.(0) <- acc.(0) +. float_of_int r.count;
      acc.(1) <- acc.(1) +. row_time r;
      acc.(2) <- acc.(2) +. row_energy r;
      acc.(3) <- acc.(3) +. float_of_int (row_wear r);
      acc.(4) <- acc.(4) +. float_of_int r.reexec)
    t.rows;
  let groups =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.stable_sort (fun (ka, a) (kb, b) ->
           match compare b.(1) a.(1) with 0 -> compare ka kb | c -> c)
  in
  let total_time = tt.t_ns +. tt.t_stall_ns +. tt.t_ckpt_ns in
  let total_energy = tt.t_joules +. tt.t_backup_joules +. tt.t_restore_joules in
  let out =
    Table.create
      [ title; "instrs"; "time%"; "energy%"; "nvm-writes"; "reexec" ]
  in
  List.iter
    (fun (k, a) ->
      Table.add_row out
        [
          k;
          Printf.sprintf "%.0f" a.(0);
          Printf.sprintf "%.1f" (pct a.(1) total_time);
          Printf.sprintf "%.1f" (pct a.(2) total_energy);
          Printf.sprintf "%.0f" a.(3);
          Printf.sprintf "%.0f" a.(4);
        ])
    groups;
  Printf.sprintf "by %s\n%s" title (Table.render out)

let render_report ?(top = 10) t =
  let tt = t.totals in
  let sections =
    [
      summary_text t;
      top_table ~title:"time (ns)" ~top
        ~metric:row_time
        ~fmt:(Printf.sprintf "%.0f")
        ~total:(tt.t_ns +. tt.t_stall_ns +. tt.t_ckpt_ns)
        t;
      top_table ~title:"energy (J)" ~top ~metric:row_energy
        ~fmt:(Printf.sprintf "%.4g")
        ~total:(tt.t_joules +. tt.t_backup_joules +. tt.t_restore_joules)
        t;
      top_table ~title:"nvm writes" ~top
        ~metric:(fun r -> float_of_int (row_wear r))
        ~fmt:(Printf.sprintf "%.0f")
        ~total:(float_of_int (tt.t_nvm_writes + tt.t_ckpt_nvm_writes))
        t;
      top_table ~title:"re-executed instrs" ~top
        ~metric:(fun r -> float_of_int r.reexec)
        ~fmt:(Printf.sprintf "%.0f")
        ~total:(float_of_int tt.t_reexec) t;
      rollup_table ~title:"function" ~group_of:(fun r -> r.func) t;
      rollup_table ~title:"opcode" ~group_of:(fun r -> r.op) t;
    ]
  in
  String.concat "\n" sections

(* ---------------- diff ---------------- *)

(* Retirement counts are structural (two correct designs legitimately
   differ); every cost series is lower-better. *)
let direction = function
  | "count" | "forward" | "instructions" -> `Info
  | _ -> `Lower_better

let row_series r =
  [
    ("count", float_of_int r.count);
    ("forward", float_of_int r.forward);
    ("reexec", float_of_int r.reexec);
    ("crashes", float_of_int r.crashes);
    ("ns", r.ns);
    ("stall_ns", r.stall_ns);
    ("joules", r.joules);
    ("backup_joules", r.backup_joules);
    ("restore_joules", r.restore_joules);
    ("ckpt_ns", r.ckpt_ns);
    ("nvm_writes", float_of_int r.nvm_writes);
    ("ckpt_nvm_writes", float_of_int r.ckpt_nvm_writes);
    ("cache_misses", float_of_int r.cache_misses);
  ]

let totals_series tt =
  [
    ("instructions", float_of_int tt.instructions);
    ("forward", float_of_int tt.t_forward);
    ("reexec", float_of_int tt.t_reexec);
    ("crashes", float_of_int tt.t_crashes);
    ("ns", tt.t_ns);
    ("stall_ns", tt.t_stall_ns);
    ("joules", tt.t_joules);
    ("backup_joules", tt.t_backup_joules);
    ("restore_joules", tt.t_restore_joules);
    ("ckpt_ns", tt.t_ckpt_ns);
    ("nvm_writes", float_of_int tt.t_nvm_writes);
    ("ckpt_nvm_writes", float_of_int tt.t_ckpt_nvm_writes);
    ("cache_misses", float_of_int tt.t_cache_misses);
  ]

(* PC + opcode identifies an instruction site; if the two profiles come
   from different compilations the keys simply fail to line up and Diff
   reports them as missing/new rather than comparing unrelated PCs.
   The "totals" pseudo-key always lines up, so even profiles of
   different programs get a whole-run verdict. *)
let to_run t =
  ("totals", totals_series t.totals)
  :: List.map
       (fun r -> (Printf.sprintf "pc%d:%s" r.pc r.op, row_series r))
       t.rows

let diff ?(threshold_pct = 0.5) a b =
  Diff.compare_runs ~direction ~threshold_pct (to_run a) (to_run b)

let diff_files ?threshold_pct a_path b_path =
  match (load a_path, load b_path) with
  | Error e, _ | _, Error e -> Error e
  | Ok a, Ok b -> diff ?threshold_pct a b
