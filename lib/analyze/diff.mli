(** Cross-run comparison with machine-readable verdicts.

    A run is loaded from a results JSONL file, a bench history file
    (most recent entry), or a [--metrics-out] snapshot — autodetected —
    and flattened to key -> numeric series.  Every series of every
    common key is compared; the per-field direction declared in
    {!Sweep_exp.Results.numeric_fields} decides whether a change beyond
    the threshold is a regression or an improvement.  [`Info] fields
    never gate, [elapsed_s] (wall-clock noise) is dropped entirely, and
    a change is a verdict only when it is {e strictly} beyond the
    threshold. *)

type verdict = Regression | Improvement | Unchanged

type delta = {
  key : string;
  field : string;
  base : float;
  cur : float;
  delta_pct : float;  (** (cur - base) / |base| * 100 *)
  direction : Sweep_exp.Results.direction;
  verdict : verdict;
}

type t = {
  threshold_pct : float;
  deltas : delta list;
  missing_in_cur : string list;
  missing_in_base : string list;
}

type run = (string * (string * float) list) list

val zero_base_sentinel : float
(** Reported magnitude of [delta_pct] when the baseline is 0 and the
    current value is not (relative change undefined). *)

val load : string -> (run, string) result

val compare_runs :
  ?direction:(string -> Sweep_exp.Results.direction) ->
  threshold_pct:float ->
  run ->
  run ->
  (t, string) result
(** [Error] when the two runs share no keys.  [?direction] overrides
    the per-field direction map (default
    {!Sweep_exp.Results.direction}) — {!Profile_view.diff} passes a
    profile-specific map where time/energy/wear series are
    [`Lower_better]. *)

val diff_files :
  threshold_pct:float -> string -> string -> (t, string) result
(** [diff_files ~threshold_pct base cur]. *)

val regressions : t -> delta list
val improvements : t -> delta list
val has_regressions : t -> bool

val render_text : t -> string
(** Changed series only, one per line, plus a summary count. *)

val render_json : t -> string
(** Machine-readable verdict document ([schema_version] 1): counts,
    key coverage, and every changed delta. *)
