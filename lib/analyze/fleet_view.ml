(* Reader + renderer for fleet.json (sweepfleet's aggregated report).

   The file is self-describing — every histogram embeds its bin edges —
   so this module depends only on the JSON shape, not on the fleet
   library (which sits above analyze in the dependency order).
   Quantiles are re-derived from the bins exactly the way the sketch
   documents them: upper edge of the first bin whose cumulative count
   reaches ceil(q * n), clamped to the observed [min, max]. *)

type hist = {
  edges : float array;
  bins : int array;
  count : int;
  sum : float;
  minv : float;
  maxv : float;
}

type group = {
  devices : int;
  failed : int;
  rate : hist;
  energy : hist;
  reboots : hist;
  survival : hist;
}

type tail = {
  id : int;
  cohort : string;
  t_rate : float;
  t_energy : float;
  t_reboots : int;
  t_survival : float;
  replay : string;
}

type t = {
  name : string;
  bench : string;
  design : string;
  trace : string;
  scale : float;
  devices_declared : int;
  seed : int;
  spec_digest : string;
  total : group;
  cohorts : (string * group) list;
  tails : tail list;
  failed_total : int;
  failed_ids : int list;
}

let ( let* ) = Result.bind

let req what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %s" what)

let hist_of_json what j =
  let* count = req (what ^ ".count") (Json.int_member "count" j) in
  let* sum = req (what ^ ".sum") (Json.float_member "sum" j) in
  let* minv = req (what ^ ".min") (Json.float_member "min" j) in
  let* maxv = req (what ^ ".max") (Json.float_member "max" j) in
  let* edges_js = req (what ^ ".edges") (Json.list_member "edges" j) in
  let* edges =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match Json.to_float e with
        | Some f -> Ok (f :: acc)
        | None -> Error (what ^ ": mistyped edge"))
      (Ok []) edges_js
  in
  let edges = Array.of_list (List.rev edges) in
  let bins = Array.make (Array.length edges) 0 in
  let* bins_js = req (what ^ ".bins") (Json.list_member "bins" j) in
  let* () =
    List.fold_left
      (fun acc pair ->
        let* () = acc in
        match Json.to_list pair with
        | Some [ i; c ] -> (
          match (Json.to_int i, Json.to_int c) with
          | Some i, Some c when i >= 0 && i < Array.length bins ->
            bins.(i) <- c;
            Ok ()
          | _ -> Error (what ^ ": bad bin entry"))
        | _ -> Error (what ^ ": bad bin entry"))
      (Ok ()) bins_js
  in
  Ok { edges; bins; count; sum; minv; maxv }

let group_of_json what j =
  let* devices = req (what ^ ".devices") (Json.int_member "devices" j) in
  let* failed = req (what ^ ".failed") (Json.int_member "failed" j) in
  let sub name =
    Result.bind
      (req (what ^ "." ^ name) (Json.member name j))
      (hist_of_json (what ^ "." ^ name))
  in
  let* rate = sub "rate" in
  let* energy = sub "energy" in
  let* reboots = sub "reboots" in
  let* survival = sub "survival" in
  Ok { devices; failed; rate; energy; reboots; survival }

let of_json j =
  let* spec = req "spec" (Json.member "spec" j) in
  let* spec_digest = req "spec_digest" (Json.string_member "spec_digest" j) in
  let* name = req "spec.name" (Json.string_member "name" spec) in
  let* bench = req "spec.bench" (Json.string_member "bench" spec) in
  let* design = req "spec.design" (Json.string_member "design" spec) in
  let* trace = req "spec.trace" (Json.string_member "trace" spec) in
  let* scale = req "spec.scale" (Json.float_member "scale" spec) in
  let* devices_declared = req "spec.devices" (Json.int_member "devices" spec) in
  let* seed = req "spec.seed" (Json.int_member "seed" spec) in
  let* state = req "state" (Json.member "state" j) in
  let* total =
    Result.bind (req "state.total" (Json.member "total" state))
      (group_of_json "total")
  in
  let* cohort_js = req "state.cohorts" (Json.list_member "cohorts" state) in
  let* cohorts =
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* cname = req "cohorts[].cohort" (Json.string_member "cohort" c) in
        let* g =
          Result.bind
            (req "cohorts[].group" (Json.member "group" c))
            (group_of_json ("cohort " ^ cname))
        in
        Ok ((cname, g) :: acc))
      (Ok []) cohort_js
  in
  let* tail_js = req "state.tail" (Json.list_member "tail" state) in
  let* tails =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* id = req "tail[].id" (Json.int_member "id" e) in
        let* cohort = req "tail[].cohort" (Json.string_member "cohort" e) in
        let* t_rate = req "tail[].rate" (Json.float_member "rate" e) in
        let* t_energy = req "tail[].energy" (Json.float_member "energy" e) in
        let* t_reboots = req "tail[].reboots" (Json.int_member "reboots" e) in
        let* t_survival =
          req "tail[].survival" (Json.float_member "survival" e)
        in
        let* replay = req "tail[].replay" (Json.string_member "replay" e) in
        Ok ({ id; cohort; t_rate; t_energy; t_reboots; t_survival; replay }
           :: acc))
      (Ok []) tail_js
  in
  let* failed_total =
    req "state.failed_total" (Json.int_member "failed_total" state)
  in
  let* failed_js =
    req "state.failed_ids" (Json.list_member "failed_ids" state)
  in
  let* failed_ids =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match Json.to_int e with
        | Some id -> Ok (id :: acc)
        | None -> Error "mistyped failed id")
      (Ok []) failed_js
  in
  Ok
    {
      name; bench; design; trace; scale; devices_declared; seed; spec_digest;
      total;
      cohorts = List.rev cohorts;
      tails = List.rev tails;
      failed_total;
      failed_ids = List.rev failed_ids;
    }

let load path =
  match Json.parse_file path with
  | Error e -> Error (path ^ ": " ^ e)
  | Ok j -> (
    match of_json j with Error e -> Error (path ^ ": " ^ e) | Ok t -> Ok t)

(* Same read-back rule the sketch documents. *)
let quantile h q =
  if h.count = 0 then None
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let i = ref 0 and cum = ref 0 in
    while !cum < target && !i < Array.length h.bins do
      cum := !cum + h.bins.(!i);
      incr i
    done;
    let v = h.edges.(max 0 (!i - 1)) in
    Some (Float.max h.minv (Float.min h.maxv v))
  end

let mean h = if h.count = 0 then None else Some (h.sum /. float_of_int h.count)

(* ---------------- rendering ---------------- *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let cell = function None -> "-" | Some v -> fnum v

let quantile_row label h =
  [
    label;
    string_of_int h.count;
    cell (mean h);
    cell (if h.count = 0 then None else Some h.minv);
    cell (quantile h 0.5);
    cell (quantile h 0.9);
    cell (quantile h 0.99);
    cell (quantile h 0.999);
    cell (if h.count = 0 then None else Some h.maxv);
  ]

let dist_headers =
  [ "metric"; "n"; "mean"; "min"; "p50"; "p90"; "p99"; "p99.9"; "max" ]

let group_rows g =
  [
    quantile_row "rate (instr/s)" g.rate;
    quantile_row "energy (J)" g.energy;
    quantile_row "reboots" g.reboots;
    quantile_row "survival" g.survival;
  ]

let summary_section t =
  {
    Report.title = "Fleet summary";
    headers = [ "field"; "value" ];
    rows =
      [
        [ "fleet"; t.name ];
        [ "bench"; t.bench ];
        [ "design"; t.design ];
        [ "trace"; t.trace ];
        [ "scale"; fnum t.scale ];
        [ "seed"; string_of_int t.seed ];
        [ "devices"; string_of_int t.devices_declared ];
        [ "aggregated"; string_of_int (t.total.devices + t.total.failed) ];
        [ "failed"; string_of_int t.failed_total ];
      ];
    notes =
      (if t.failed_ids = [] then []
       else
         [
           Printf.sprintf "failed device ids%s: %s"
             (if t.failed_total > List.length t.failed_ids then
                Printf.sprintf " (first %d of %d)" (List.length t.failed_ids)
                  t.failed_total
              else "")
             (String.concat ", " (List.map string_of_int t.failed_ids));
         ]);
  }

let distribution_section t =
  {
    Report.title = "Fleet distributions";
    headers = dist_headers;
    rows = group_rows t.total;
    notes =
      [
        "quantiles are upper bin edges (log bins, <=33% relative error; \
         reboot counts exact below 511), clamped to the observed min/max";
      ];
  }

let cohort_section t =
  {
    Report.title = "Cohorts";
    headers =
      [ "cohort"; "devices"; "failed"; "rate p50"; "rate p99"; "energy p50";
        "reboots p99"; "survival p50" ];
    rows =
      List.map
        (fun (name, g) ->
          [
            name;
            string_of_int g.devices;
            string_of_int g.failed;
            cell (quantile g.rate 0.5);
            cell (quantile g.rate 0.99);
            cell (quantile g.energy 0.5);
            cell (quantile g.reboots 0.99);
            cell (quantile g.survival 0.5);
          ])
        t.cohorts;
    notes = [];
  }

let tail_section t =
  {
    Report.title = "Tail devices (slowest forward progress)";
    headers = [ "device"; "cohort"; "rate"; "energy (J)"; "reboots"; "survival" ];
    rows =
      List.map
        (fun e ->
          [
            string_of_int e.id;
            e.cohort;
            fnum e.t_rate;
            fnum e.t_energy;
            string_of_int e.t_reboots;
            fnum e.t_survival;
          ])
        t.tails;
    notes =
      List.map
        (fun e -> Printf.sprintf "replay device %d: sweepsim %s" e.id e.replay)
        t.tails;
  }

let report ~source t =
  {
    Report.source;
    warnings = [];
    sections =
      [
        summary_section t;
        distribution_section t;
        cohort_section t;
        tail_section t;
      ];
  }
