(** Reader + renderer for [fleet.json], sweepfleet's aggregated fleet
    report.

    The file is self-describing (every histogram embeds its bin edges),
    so this module depends only on the JSON shape, not on the fleet
    library — analyze sits below fleet in the dependency order.
    Rendering goes through {!Report}, so text/CSV/markdown come for
    free ([sweeptrace fleet], [sweepfleet report]). *)

type hist = {
  edges : float array;
  bins : int array;
  count : int;
  sum : float;
  minv : float;
  maxv : float;
}

type group = {
  devices : int;
  failed : int;
  rate : hist;
  energy : hist;
  reboots : hist;
  survival : hist;
}

type tail = {
  id : int;
  cohort : string;
  t_rate : float;
  t_energy : float;
  t_reboots : int;
  t_survival : float;
  replay : string;
}

type t = {
  name : string;
  bench : string;
  design : string;
  trace : string;
  scale : float;
  devices_declared : int;
  seed : int;
  spec_digest : string;
  total : group;
  cohorts : (string * group) list;
  tails : tail list;
  failed_total : int;
  failed_ids : int list;
}

val of_json : Json.t -> (t, string) result
val load : string -> (t, string) result

val quantile : hist -> float -> float option
(** Upper edge of the first bin whose cumulative count reaches
    [ceil (q * count)], clamped to the observed min/max — the sketch's
    documented read-back rule; [None] on empty. *)

val mean : hist -> float option

val report : source:string -> t -> Report.t
(** Four sections: fleet summary, whole-fleet distributions
    (mean/min/p50/p90/p99/p99.9/max per metric), per-cohort breakdown,
    and the tail-device table with exact sweepsim replay command lines
    in its notes. *)
