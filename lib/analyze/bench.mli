(** The perf-regression pipeline: a pinned workload matrix and the
    schema-versioned history file (BENCH_sweepcache.json) CI appends to
    on every commit and diffs against the committed baseline.

    The simulator is fully deterministic (every simulated metric is a
    pure function of the job), so the gate compares exact values;
    wall-clock [elapsed_s] is excluded. *)

val schema_version : int

val matrix_id : string
(** Identity of the pinned matrix; bumped whenever the job set changes.
    Entries from different matrices refuse to diff. *)

val jobs : unit -> Sweep_exp.Jobs.t list
(** The pinned matrix: NVP, ReplayCache and SweepCache (empty-bit) ×
    sha/dijkstra/fft at scale 0.1 under harvested RF-home power. *)

val run : ?workers:int -> unit -> Diff.run
(** Execute the matrix through {!Sweep_exp.Executor} and project every
    summary onto the results schema's numeric fields. *)

type entry = { ts : string; commit : string; results : Diff.run }

val load_entries : string -> (entry list, string) result
(** [Ok []] when the file does not exist yet; [Error] on a schema or
    matrix mismatch. *)

val append : path:string -> entry -> (int, string) result
(** Append one entry, rewriting the file atomically (tmp + rename).
    Returns the new entry count. *)

val latest : string -> (entry, string) result
