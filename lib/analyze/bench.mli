(** The perf-regression pipeline: a pinned workload matrix and the
    schema-versioned history file (BENCH_sweepcache.json) CI appends to
    on every commit and diffs against the committed baseline.

    The simulator is fully deterministic (every simulated metric is a
    pure function of the job), so the gate compares exact values;
    wall-clock [elapsed_s] is excluded. *)

val schema_version : int

val matrix_id : string
(** Identity of the pinned matrix; bumped whenever the job set changes.
    Entries from different matrices refuse to diff. *)

val jobs : unit -> Sweep_exp.Jobs.t list
(** The pinned matrix: NVP, ReplayCache and SweepCache (empty-bit) ×
    sha/dijkstra/fft at scale 0.1 under harvested RF-home power. *)

val run : ?workers:int -> unit -> Diff.run
(** Execute the matrix through {!Sweep_exp.Executor} and project every
    summary onto the results schema's numeric fields. *)

val measure_throughput :
  ?min_seconds:float -> unit -> (string * float) list
(** Sequentially time each pinned job and report simulated
    instructions per wall-second, keyed like the results.  Each job is
    repeated until [min_seconds] (default 0.2) of wall time accumulates
    so fast simulators still yield stable numbers.  Host-dependent:
    never compared by the exact-value diff gate. *)

val geomean : (string * float) list -> float
(** Geometric mean of the measured values; 0 for an empty list. *)

type entry = {
  ts : string;
  commit : string;
  results : Diff.run;
  throughput : (string * float) list;
      (** instructions/wall-second per job; [] for schema-v1 entries,
          which predate the throughput track *)
}

val load_entries : string -> (entry list, string) result
(** [Ok []] when the file does not exist yet; [Error] on a schema or
    matrix mismatch. *)

val append : path:string -> entry -> (int, string) result
(** Append one entry, rewriting the file atomically (tmp + rename).
    Returns the new entry count. *)

val latest : string -> (entry, string) result
