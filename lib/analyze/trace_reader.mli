(** Streaming reader for the JSONL event trace
    ([sweepsim --trace out.jsonl --trace-format jsonl], or any
    {!Sweep_obs.Jsonl_sink} output).  Decodes each line back into a
    typed {!Sweep_obs.Event.t} via [Event.of_parts]. *)

type entry = { ns : float; event : Sweep_obs.Event.t }

type stats = {
  lines : int;      (** non-empty lines seen *)
  parsed : int;     (** lines decoded into events *)
  malformed : int;  (** lines rejected (bad JSON or unknown layout) *)
  dropped : int;
      (** events lost before the trace was written (sum of
          [Event.Dropped] payloads); non-zero means the trace is
          truncated and every derived view is a lower bound. *)
}

val empty_stats : stats

val parse_line : string -> entry option
(** One JSONL line → entry; [None] on malformed input.  Inverse of
    {!Sweep_obs.Jsonl_sink.render_line}. *)

val fold : string -> init:'a -> f:('a -> entry -> 'a) -> 'a * stats
(** Stream the file through [f] line by line (constant memory). *)

val read_all : string -> entry list * stats
(** Materialise the whole trace, file order preserved. *)
