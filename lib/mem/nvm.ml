open Sweep_isa

(* Word storage lives in a Bigarray so word reads/writes on the hot
   path are plain unboxed int loads/stores with no GC involvement (the
   16 MiB backing store would otherwise sit in the major heap and get
   walked by the GC). *)
type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  words : words;
  mutable read_events : int;
  mutable write_events : int;
  mutable bytes_written : int;
}

let word_count = Layout.nvm_bytes / Layout.word_bytes

let create () =
  let words = Bigarray.Array1.create Bigarray.int Bigarray.c_layout word_count in
  Bigarray.Array1.fill words 0;
  { words; read_events = 0; write_events = 0; bytes_written = 0 }

let check_word_addr addr =
  if addr land (Layout.word_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "Nvm: unaligned word address %#x" addr);
  if addr < 0 || addr >= Layout.nvm_bytes then
    invalid_arg (Printf.sprintf "Nvm: address %#x out of range" addr)

(* After [check_word_addr]/[check_line_addr] the word index is provably
   inside [word_count], so the hot accessors skip the Bigarray bounds
   check (it would re-test what the explicit check just established). *)

let read_word t addr =
  check_word_addr addr;
  t.read_events <- t.read_events + 1;
  Bigarray.Array1.unsafe_get t.words (addr / Layout.word_bytes)

let write_word t addr v =
  check_word_addr addr;
  t.write_events <- t.write_events + 1;
  t.bytes_written <- t.bytes_written + Layout.word_bytes;
  Bigarray.Array1.unsafe_set t.words (addr / Layout.word_bytes) v

let check_line_addr base =
  if base land (Layout.line_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "Nvm: unaligned line address %#x" base);
  if base < 0 || base + Layout.line_bytes > Layout.nvm_bytes then
    invalid_arg (Printf.sprintf "Nvm: line %#x out of range" base)

let read_line t base =
  check_line_addr base;
  t.read_events <- t.read_events + 1;
  let w = base / Layout.word_bytes in
  Array.init Layout.words_per_line (fun k -> t.words.{w + k})

let read_line_into t base ~dst ~dst_pos =
  check_line_addr base;
  t.read_events <- t.read_events + 1;
  let w = base / Layout.word_bytes in
  for k = 0 to Layout.words_per_line - 1 do
    dst.(dst_pos + k) <- Bigarray.Array1.unsafe_get t.words (w + k)
  done

let write_line t base data =
  check_line_addr base;
  assert (Array.length data = Layout.words_per_line);
  t.write_events <- t.write_events + 1;
  t.bytes_written <- t.bytes_written + Layout.line_bytes;
  let w = base / Layout.word_bytes in
  for k = 0 to Layout.words_per_line - 1 do
    t.words.{w + k} <- data.(k)
  done

let write_line_from t base ~src ~src_pos =
  check_line_addr base;
  t.write_events <- t.write_events + 1;
  t.bytes_written <- t.bytes_written + Layout.line_bytes;
  let w = base / Layout.word_bytes in
  for k = 0 to Layout.words_per_line - 1 do
    Bigarray.Array1.unsafe_set t.words (w + k) src.(src_pos + k)
  done

let write_line_torn t base data ~words =
  check_line_addr base;
  assert (Array.length data = Layout.words_per_line);
  if words <= 0 || words >= Layout.words_per_line then
    invalid_arg "Nvm.write_line_torn: words must be in (0, words_per_line)";
  t.write_events <- t.write_events + 1;
  t.bytes_written <- t.bytes_written + (words * Layout.word_bytes);
  let w = base / Layout.word_bytes in
  for k = 0 to words - 1 do
    t.words.{w + k} <- data.(k)
  done

let peek_word t addr =
  check_word_addr addr;
  t.words.{addr / Layout.word_bytes}

let poke_word t addr v =
  check_word_addr addr;
  t.words.{addr / Layout.word_bytes} <- v

let read_events t = t.read_events
let write_events t = t.write_events
let bytes_written t = t.bytes_written

let add_external_writes t ~events ~bytes =
  t.write_events <- t.write_events + events;
  t.bytes_written <- t.bytes_written + bytes

let reset_counters t =
  t.read_events <- 0;
  t.write_events <- 0;
  t.bytes_written <- 0

let image t ~lo ~hi =
  check_word_addr lo;
  check_word_addr hi;
  let w = lo / Layout.word_bytes in
  Array.init ((hi - lo) / Layout.word_bytes) (fun k -> t.words.{w + k})
