open Sweep_isa

type t = {
  words : int array;
  mutable read_events : int;
  mutable write_events : int;
  mutable bytes_written : int;
}

let word_count = Layout.nvm_bytes / Layout.word_bytes

let create () =
  { words = Array.make word_count 0;
    read_events = 0;
    write_events = 0;
    bytes_written = 0 }

let check_word_addr addr =
  if addr land (Layout.word_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "Nvm: unaligned word address %#x" addr);
  if addr < 0 || addr >= Layout.nvm_bytes then
    invalid_arg (Printf.sprintf "Nvm: address %#x out of range" addr)

let read_word t addr =
  check_word_addr addr;
  t.read_events <- t.read_events + 1;
  t.words.(addr / Layout.word_bytes)

let write_word t addr v =
  check_word_addr addr;
  t.write_events <- t.write_events + 1;
  t.bytes_written <- t.bytes_written + Layout.word_bytes;
  t.words.(addr / Layout.word_bytes) <- v

let check_line_addr base =
  if base land (Layout.line_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "Nvm: unaligned line address %#x" base);
  if base < 0 || base + Layout.line_bytes > Layout.nvm_bytes then
    invalid_arg (Printf.sprintf "Nvm: line %#x out of range" base)

let read_line t base =
  check_line_addr base;
  t.read_events <- t.read_events + 1;
  Array.sub t.words (base / Layout.word_bytes) Layout.words_per_line

let write_line t base data =
  check_line_addr base;
  assert (Array.length data = Layout.words_per_line);
  t.write_events <- t.write_events + 1;
  t.bytes_written <- t.bytes_written + Layout.line_bytes;
  Array.blit data 0 t.words (base / Layout.word_bytes) Layout.words_per_line

let write_line_torn t base data ~words =
  check_line_addr base;
  assert (Array.length data = Layout.words_per_line);
  if words <= 0 || words >= Layout.words_per_line then
    invalid_arg "Nvm.write_line_torn: words must be in (0, words_per_line)";
  t.write_events <- t.write_events + 1;
  t.bytes_written <- t.bytes_written + (words * Layout.word_bytes);
  Array.blit data 0 t.words (base / Layout.word_bytes) words

let peek_word t addr =
  check_word_addr addr;
  t.words.(addr / Layout.word_bytes)

let poke_word t addr v =
  check_word_addr addr;
  t.words.(addr / Layout.word_bytes) <- v

let read_events t = t.read_events
let write_events t = t.write_events
let bytes_written t = t.bytes_written

let add_external_writes t ~events ~bytes =
  t.write_events <- t.write_events + events;
  t.bytes_written <- t.bytes_written + bytes

let reset_counters t =
  t.read_events <- 0;
  t.write_events <- 0;
  t.bytes_written <- 0

let image t ~lo ~hi =
  check_word_addr lo;
  check_word_addr hi;
  Array.sub t.words (lo / Layout.word_bytes) ((hi - lo) / Layout.word_bytes)
