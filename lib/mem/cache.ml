open Sweep_isa

(* Struct-of-arrays line storage: a line is an int index into flat
   parallel arrays, and all line data lives in one contiguous array
   ([data], 16 words per line).  No per-line records, no per-line data
   arrays — find/touch/read/write on the hot path allocate nothing, and
   fills/write-backs blit straight between [data] and NVM. *)
type t = {
  set_count : int;
  set_mask : int;
      (* [set_count - 1] when [set_count] is a power of two (the usual
         geometry), so [set_base] can mask instead of paying a hardware
         divide per access; -1 otherwise. *)
  assoc : int;
  valid : int array;        (* 0/1 *)
  dirty : int array;        (* 0/1 *)
  dirty_region : int array; (* region id of the dirtying store; -1 clean *)
  base : int array;         (* line-aligned byte address *)
  lru : int array;          (* bigger = more recently used *)
  data : int array;         (* line_count * words_per_line *)
  mutable clock : int;      (* LRU timestamp source *)
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~assoc =
  if size_bytes <= 0 || assoc <= 0 then invalid_arg "Cache.create: sizes";
  if size_bytes mod (assoc * Layout.line_bytes) <> 0 then
    invalid_arg "Cache.create: size not a multiple of assoc * line";
  let set_count = size_bytes / (assoc * Layout.line_bytes) in
  let n = set_count * assoc in
  {
    set_count;
    set_mask = (if set_count land (set_count - 1) = 0 then set_count - 1 else -1);
    assoc;
    valid = Array.make n 0;
    dirty = Array.make n 0;
    dirty_region = Array.make n (-1);
    base = Array.make n 0;
    lru = Array.make n 0;
    data = Array.make (n * Layout.words_per_line) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let size_bytes t = t.set_count * t.assoc * Layout.line_bytes
let assoc t = t.assoc
let line_count t = t.set_count * t.assoc

let set_base t addr =
  let s = Layout.line_base addr / Layout.line_bytes in
  (if t.set_mask >= 0 then s land t.set_mask else s mod t.set_count) * t.assoc

let no_line = -1

(* Top-level recursion: a local [let rec] closure would allocate on
   every access. *)
let rec scan_set valid bases base i last =
  if i > last then no_line
  else if
    Array.unsafe_get valid i = 1 && Array.unsafe_get bases i = base
  then i
  else scan_set valid bases base (i + 1) last

let find t addr =
  let base = Layout.line_base addr in
  let s = set_base t addr in
  scan_set t.valid t.base base s (s + t.assoc - 1)

let touch t li =
  t.clock <- t.clock + 1;
  t.lru.(li) <- t.clock

let rec first_invalid valid i last =
  if i > last then no_line
  else if Array.unsafe_get valid i = 0 then i
  else first_invalid valid (i + 1) last

let rec lru_min lru i last best =
  if i > last then best
  else
    lru_min lru (i + 1) last
      (if Array.unsafe_get lru i < Array.unsafe_get lru best then i else best)

let victim t addr =
  let s = set_base t addr in
  let last = s + t.assoc - 1 in
  let i = first_invalid t.valid s last in
  if i <> no_line then i else lru_min t.lru (s + 1) last s

let valid t li = t.valid.(li) = 1
let dirty t li = t.dirty.(li) = 1
let dirty_region t li = t.dirty_region.(li)
let line_addr t li = t.base.(li)

let set_dirty t li ~region =
  t.dirty.(li) <- 1;
  t.dirty_region.(li) <- region

let clear_dirty t li =
  t.dirty.(li) <- 0;
  t.dirty_region.(li) <- -1

let data t = t.data
let data_pos _t li = li * Layout.words_per_line

(* Tag-only install of a fill into a victim way the caller already
   chose (its previous occupant handled, the miss scan done once).  The
   line comes up clean; the caller fills [data] at [data_pos] itself —
   from NVM via {!Nvm.read_line_into}, or from a persist buffer. *)
let install_victim t li addr =
  t.valid.(li) <- 1;
  t.dirty.(li) <- 0;
  t.dirty_region.(li) <- -1;
  t.base.(li) <- Layout.line_base addr;
  touch t li

let install t addr line_data =
  assert (Array.length line_data = Layout.words_per_line);
  (* Reinstalling a resident line must not create a duplicate in another
     way: reuse the existing line. *)
  let li =
    match find t addr with i when i <> no_line -> i | _ -> victim t addr
  in
  install_victim t li addr;
  Array.blit line_data 0 t.data (li * Layout.words_per_line)
    Layout.words_per_line;
  li

let copy_line_data t li =
  Array.sub t.data (li * Layout.words_per_line) Layout.words_per_line

(* [word_index] sits on the load/store hot path; its bounds checks are
   only for catching layout bugs during development, so they hide
   behind a runtime flag (off by default, switched on by the unit
   tests) instead of taxing every simulated access. *)
let debug_checks = ref false
let set_debug_checks b = debug_checks := b

let word_index t li addr =
  let off = addr - t.base.(li) in
  if !debug_checks then begin
    assert (off >= 0 && off < Layout.line_bytes);
    assert (addr land (Layout.word_bytes - 1) = 0)
  end;
  (li * Layout.words_per_line) + (off / Layout.word_bytes)

let read_word t li addr = t.data.(word_index t li addr)
let write_word t li addr v = t.data.(word_index t li addr) <- v

let dirty_lines t =
  let acc = ref [] in
  for i = line_count t - 1 downto 0 do
    if t.valid.(i) = 1 && t.dirty.(i) = 1 then acc := i :: !acc
  done;
  !acc

let iter_lines t f =
  for i = 0 to line_count t - 1 do
    f i
  done

let invalidate_all t =
  iter_lines t (fun i ->
      t.valid.(i) <- 0;
      t.dirty.(i) <- 0;
      t.dirty_region.(i) <- -1)

let clean_all t =
  iter_lines t (fun i ->
      t.dirty.(i) <- 0;
      t.dirty_region.(i) <- -1)

module Metrics = Sweep_obs.Metrics

let m_hits = Metrics.counter "cache.hits"
let m_misses = Metrics.counter "cache.misses"

let record_hit t =
  t.hits <- t.hits + 1;
  if Metrics.enabled () then Metrics.inc m_hits

let record_miss t =
  t.misses <- t.misses + 1;
  if Metrics.enabled () then Metrics.inc m_misses

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let miss_rate t =
  let total = accesses t in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
