open Sweep_isa

type line = {
  mutable valid : bool;
  mutable dirty : bool;
  mutable dirty_region : int;
  mutable base : int;
  mutable lru : int;
  data : int array;
}

type t = {
  sets : line array array; (* sets.(set_index).(way) *)
  set_count : int;
  assoc : int;
  mutable clock : int; (* LRU timestamp source *)
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~assoc =
  if size_bytes <= 0 || assoc <= 0 then invalid_arg "Cache.create: sizes";
  if size_bytes mod (assoc * Layout.line_bytes) <> 0 then
    invalid_arg "Cache.create: size not a multiple of assoc * line";
  let set_count = size_bytes / (assoc * Layout.line_bytes) in
  let fresh_line () =
    { valid = false;
      dirty = false;
      dirty_region = -1;
      base = 0;
      lru = 0;
      data = Array.make Layout.words_per_line 0 }
  in
  let sets =
    Array.init set_count (fun _ -> Array.init assoc (fun _ -> fresh_line ()))
  in
  { sets; set_count; assoc; clock = 0; hits = 0; misses = 0 }

let size_bytes t = t.set_count * t.assoc * Layout.line_bytes
let assoc t = t.assoc
let line_count t = t.set_count * t.assoc

let set_of t addr = t.sets.((Layout.line_base addr / Layout.line_bytes) mod t.set_count)

let find t addr =
  let base = Layout.line_base addr in
  let set = set_of t addr in
  let rec scan i =
    if i >= t.assoc then None
    else begin
      let line = set.(i) in
      if line.valid && line.base = base then Some line else scan (i + 1)
    end
  in
  scan 0

let touch t line =
  t.clock <- t.clock + 1;
  line.lru <- t.clock

let victim t addr =
  let set = set_of t addr in
  let first_invalid =
    Array.fold_left
      (fun acc line ->
        match acc with
        | Some _ -> acc
        | None -> if line.valid then None else Some line)
      None set
  in
  match first_invalid with
  | Some line -> line
  | None ->
    Array.fold_left (fun best line -> if line.lru < best.lru then line else best)
      set.(0) set

let install t addr data =
  assert (Array.length data = Layout.words_per_line);
  (* Reinstalling a resident line must not create a duplicate in another
     way: reuse the existing line. *)
  let line =
    match find t addr with Some line -> line | None -> victim t addr
  in
  line.valid <- true;
  line.dirty <- false;
  line.dirty_region <- -1;
  line.base <- Layout.line_base addr;
  Array.blit data 0 line.data 0 Layout.words_per_line;
  touch t line;
  line

let word_index line addr =
  let off = addr - line.base in
  assert (off >= 0 && off < Layout.line_bytes);
  assert (addr land (Layout.word_bytes - 1) = 0);
  off / Layout.word_bytes

let read_word line addr = line.data.(word_index line addr)

let write_word line addr v = line.data.(word_index line addr) <- v

let dirty_lines t =
  let acc = ref [] in
  Array.iter
    (fun set ->
      Array.iter (fun line -> if line.valid && line.dirty then acc := line :: !acc) set)
    t.sets;
  List.rev !acc

let iter_lines t f = Array.iter (fun set -> Array.iter f set) t.sets

let invalidate_all t =
  iter_lines t (fun line ->
      line.valid <- false;
      line.dirty <- false;
      line.dirty_region <- -1)

let clean_all t =
  iter_lines t (fun line ->
      line.dirty <- false;
      line.dirty_region <- -1)

module Metrics = Sweep_obs.Metrics

let m_hits = Metrics.counter "cache.hits"
let m_misses = Metrics.counter "cache.misses"

let record_hit t =
  t.hits <- t.hits + 1;
  if Metrics.enabled () then Metrics.inc m_hits

let record_miss t =
  t.misses <- t.misses + 1;
  if Metrics.enabled () then Metrics.inc m_misses
let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let miss_rate t =
  let total = accesses t in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
