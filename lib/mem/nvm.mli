(** Byte-addressed non-volatile main memory (ReRAM model).

    Holds real data — recovery correctness tests compare final NVM images
    against a golden run — and counts access events for the Fig. 16
    experiment.  Timing and energy are charged by the machines, not here;
    this module is purely functional state plus accounting.

    A "write event" is one NVM write transaction regardless of width: a
    word store from a cache-free NVP and a 64-byte line write-back both
    count as one event, as in the paper's NVM-write comparison. *)

type t

val create : unit -> t
(** Fresh zeroed NVM of {!Sweep_isa.Layout.nvm_bytes}. *)

val read_word : t -> int -> int
(** [read_word t addr] with [addr] word-aligned.  Counts one read event. *)

val write_word : t -> int -> int -> unit
(** [write_word t addr v].  Counts one write event. *)

val read_line : t -> int -> int array
(** [read_line t base] reads the 16-word line at [base] (line-aligned).
    Counts one read event. *)

val read_line_into : t -> int -> dst:int array -> dst_pos:int -> unit
(** Like {!read_line} but fills [dst] at [dst_pos] instead of
    allocating — the cache-fill path reads straight into the cache's
    contiguous data array.  Counts one read event. *)

val write_line : t -> int -> int array -> unit
(** [write_line t base data] writes a full line.  Counts one write
    event. *)

val write_line_from : t -> int -> src:int array -> src_pos:int -> unit
(** Line write sourced from [src] at [src_pos] (write-back straight out
    of the cache's contiguous data array).  Counts one write event. *)

val write_line_torn : t -> int -> int array -> words:int -> unit
(** [write_line_torn t base data ~words] models a DMA line write cut by
    a power failure: only the first [words] words (0 < [words] <
    words-per-line) of [data] reach NVM; the line's tail keeps its old
    contents.  Counts one (partial) write event.  Fault injection
    only. *)

val peek_word : t -> int -> int
(** Read without accounting (for tests and state comparison). *)

val poke_word : t -> int -> int -> unit
(** Write without accounting (program loading). *)

val read_events : t -> int
val write_events : t -> int
val bytes_written : t -> int

val add_external_writes : t -> events:int -> bytes:int -> unit
(** Account NVM write traffic that does not go through the address map —
    NVSRAM's backup transfers into its nonvolatile counterpart, NvMR's
    checkpoint writes.  Fig. 16 counts these. *)

val reset_counters : t -> unit

val image : t -> lo:int -> hi:int -> int array
(** Copy of the word contents of [\[lo, hi)] (byte bounds, aligned), for
    golden-state comparison. *)
