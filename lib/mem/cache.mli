(** Set-associative volatile SRAM data cache with real data.

    The cache is a passive structure: machines orchestrate miss handling,
    write-backs and flushes themselves, because each design (WT, NVSRAM,
    ReplayCache, SweepCache) treats those events differently.  Lines carry
    a [dirty_region] tag — the id of the region whose store dirtied the
    line — which SweepCache's write-after-write rule needs (§4.3).

    Storage is struct-of-arrays: a line is an [int] index (dense in
    [0, line_count)), its metadata lives in flat parallel arrays and its
    16 words occupy one slice of a single contiguous data array, so the
    simulator's hot path runs without per-access allocation.  {!find}
    returns {!no_line} on a miss rather than an option.

    Power failure wipes the cache ({!invalidate_all}); NVSRAM restores it
    from its nonvolatile counterpart by re-installing saved lines. *)

type t

val create : size_bytes:int -> assoc:int -> t
(** [create ~size_bytes ~assoc]; [size_bytes] must be a multiple of
    [assoc * 64].  The paper default is 4 kB, 2-way. *)

val size_bytes : t -> int
val assoc : t -> int
val line_count : t -> int

val no_line : int
(** The miss sentinel (-1) returned by {!find} and {!victim}-style
    scans; never a valid line index. *)

val find : t -> int -> int
(** [find t addr] returns the index of the line containing [addr], or
    {!no_line} (does not touch LRU or hit counters — use
    {!record_hit}/{!record_miss}). *)

val touch : t -> int -> unit
(** Mark a line most-recently-used. *)

val victim : t -> int -> int
(** The line to (re)use for a fill of [addr]'s set: an invalid way if one
    exists, else the LRU way.  The caller must write back the victim's
    data first if it is valid and dirty. *)

val install_victim : t -> int -> int -> unit
(** [install_victim t li addr] retags the victim way [li] (from
    {!victim}, after the caller missed via {!find} and handled the
    occupant) as a clean resident line for [addr] and touches it.  The
    caller fills the line's words itself — via
    {!Nvm.read_line_into}[ nvm base ~dst:(data t) ~dst_pos:(data_pos t li)]
    or a persist-buffer blit — so the miss path scans the set exactly
    once and copies the data exactly once. *)

val install : t -> int -> int array -> int
(** [install t addr data] fills [addr]'s set with the given line data
    (clean) and returns the line: the resident line if [addr] is
    already cached (no duplicate ways), else the victim way.  Cold-path
    convenience (recovery reinstalls, tests); the miss path proper uses
    {!find}/{!victim}/{!install_victim}. *)

val valid : t -> int -> bool
val dirty : t -> int -> bool

val dirty_region : t -> int -> int
(** Region id of the dirtying store; -1 if clean. *)

val line_addr : t -> int -> int
(** The line's base (line-aligned byte address). *)

val set_dirty : t -> int -> region:int -> unit
val clear_dirty : t -> int -> unit

val read_word : t -> int -> int -> int
(** [read_word t li addr] for an address inside line [li]. *)

val write_word : t -> int -> int -> int -> unit
(** Writes data only; dirtiness is the caller's concern. *)

val data : t -> int array
(** The contiguous backing store, [line_count * 16] words. *)

val data_pos : t -> int -> int
(** Word offset of line [li]'s data within {!data}. *)

val copy_line_data : t -> int -> int array
(** Fresh 16-word copy of a line's data (cold paths: backups, pushes
    into legacy array-based consumers). *)

val dirty_lines : t -> int list
(** All valid dirty lines, in line-index (set) order. *)

val iter_lines : t -> (int -> unit) -> unit
(** Every way, valid or not; the callback filters on {!valid}. *)

val invalidate_all : t -> unit
(** Power failure: every line is lost. *)

val clean_all : t -> unit
(** Reset every dirty bit without touching data (SweepCache's post-flush
    state: "flushed data still remain in the cache", §4.2). *)

val record_hit : t -> unit
val record_miss : t -> unit
val hits : t -> int
val misses : t -> int
val accesses : t -> int
val miss_rate : t -> float
val reset_counters : t -> unit

val set_debug_checks : bool -> unit
(** Enable the word-index bounds assertions on the access hot path.
    Off by default (release throughput); the memory unit tests switch
    it on so layout bugs still fail loudly under [dune runtest]. *)
